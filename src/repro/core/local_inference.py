"""Local inference: GP prediction from a nearby subset of training points (§5.1).

Global GP inference costs ``O(m n^2)`` for ``m`` test samples and ``n``
training points.  Because stationary kernels decay with distance, training
points far from the input samples contribute almost nothing to the weighted
average that forms the predictive mean.  Local inference therefore

1. builds a bounding box around the input samples,
2. retrieves from the R-tree the training points within a search radius of
   that box,
3. bounds the *omitted* contribution ``γ = max_j |Σ_{l excluded}
   k(x_j, x_l) α_l|`` using the nearest / farthest points of the box
   (optionally per sub-box for a tighter bound), and
4. grows the search radius until ``γ ≤ Γ``, the local-inference threshold,

and then runs inference using only the selected subset: the predictive mean
uses the *global* weight vector α restricted to the subset (exactly the
approximation analysed in the paper), while the predictive variance uses the
local covariance matrix, which is where the ``O(l^3 + m l^2)`` cost comes
from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import GPError
from repro.gp.kernels import Kernel
from repro.gp.linalg import inverse_from_cholesky, jittered_cholesky
from repro.gp.regression import GaussianProcess
from repro.index.bounding_box import BoundingBox
from repro.index.rtree import RTree


@dataclass(frozen=True)
class LocalInferenceResult:
    """Outcome of one local-inference call."""

    #: Predictive means at the input samples.
    means: np.ndarray
    #: Predictive standard deviations at the input samples.
    stds: np.ndarray
    #: Row indices (into the global training set) of the selected points.
    selected_indices: np.ndarray
    #: Upper bound on the omitted-weight error γ actually achieved.
    gamma: float
    #: Search radius at which the selection stopped.
    radius: float

    @property
    def n_selected(self) -> int:
        """Number of training points used for this inference."""
        return int(self.selected_indices.size)


def kernel_at_distance(kernel: Kernel, distances: np.ndarray) -> np.ndarray:
    """Evaluate an isotropic kernel as a function of Euclidean distance."""
    distances = np.atleast_1d(np.asarray(distances, dtype=float)).reshape(-1, 1)
    origin = np.zeros((1, 1))
    return kernel(origin, distances).ravel()


def omitted_weight_bound(
    kernel: Kernel,
    excluded_points: np.ndarray,
    excluded_alpha: np.ndarray,
    sample_box: BoundingBox,
    subdivisions: int = 2,
) -> float:
    """Upper bound on ``γ`` — the mean-prediction error of dropping points.

    For every excluded training point the kernel value at any sample is
    bracketed by its value at the farthest and nearest points of the sample
    bounding box; multiplying by the point's α weight and summing gives an
    interval containing the omitted contribution for *every* sample at once.
    Sub-dividing the sample box and taking the max over sub-boxes tightens
    the bound (the paper's implementation detail).
    """
    excluded_points = np.atleast_2d(np.asarray(excluded_points, dtype=float))
    excluded_alpha = np.asarray(excluded_alpha, dtype=float).ravel()
    if excluded_points.shape[0] == 0:
        return 0.0
    if excluded_points.shape[0] != excluded_alpha.size:
        raise GPError("excluded_points and excluded_alpha must align")
    boxes = sample_box.subdivide(max(1, subdivisions))
    worst = 0.0
    for box in boxes:
        near = np.array([box.min_distance_to(p) for p in excluded_points])
        far = np.array([box.max_distance_to(p) for p in excluded_points])
        k_near = kernel_at_distance(kernel, near)
        k_far = kernel_at_distance(kernel, far)
        low = np.minimum(k_near * excluded_alpha, k_far * excluded_alpha)
        high = np.maximum(k_near * excluded_alpha, k_far * excluded_alpha)
        gamma_box = max(abs(float(np.sum(low))), abs(float(np.sum(high))))
        worst = max(worst, gamma_box)
    return worst


def initial_search_radius(kernel: Kernel, alpha: np.ndarray, gamma_threshold: float) -> float:
    """Heuristic starting radius for the training-point retrieval.

    Solves ``k(r) * Σ|α| = Γ`` for the squared-exponential-like decay
    ``k(r) = σ_f² exp(-r²/(2 l²))``; beyond this radius even the worst-case
    sum of omitted weights is below the threshold, so it is a natural place
    to start before the exact bound refines the selection.
    """
    total_weight = float(np.sum(np.abs(alpha)))
    signal = kernel.signal_std**2
    if total_weight <= 0 or gamma_threshold >= signal * total_weight:
        return kernel.lengthscale
    ratio = signal * total_weight / gamma_threshold
    return kernel.lengthscale * math.sqrt(2.0 * math.log(ratio))


class LocalInferenceEngine:
    """Selects nearby training points and runs subset GP inference.

    ``bound_method`` chooses how the omitted contribution γ is bounded:

    * ``"exact"`` (default) evaluates ``γ = max_j |Σ_excluded k(x_j, x_l) α_l|``
      over the actual Monte-Carlo samples — an O(m·n) vectorised computation
      that allows positive and negative weights to cancel and therefore keeps
      very few points;
    * ``"box"`` is the paper's conservative bounding-box bound that never
      touches the individual samples (O(n) per check).
    """

    def __init__(
        self,
        gamma_threshold: float,
        subdivisions: int = 2,
        expansion_factor: float = 1.5,
        max_expansions: int = 30,
        bound_method: str = "exact",
    ):
        if gamma_threshold <= 0:
            raise GPError("gamma_threshold must be positive")
        if expansion_factor <= 1.0:
            raise GPError("expansion_factor must exceed 1")
        if bound_method not in ("exact", "box"):
            raise GPError(f"unknown bound_method {bound_method!r}")
        self.gamma_threshold = float(gamma_threshold)
        self.subdivisions = int(subdivisions)
        self.expansion_factor = float(expansion_factor)
        self.max_expansions = int(max_expansions)
        self.bound_method = bound_method

    # -- point selection ---------------------------------------------------------
    def select_points(
        self,
        gp: GaussianProcess,
        index: RTree,
        sample_box: BoundingBox,
        samples: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, float, float]:
        """Indices of the training points to keep, plus the achieved γ and radius."""
        n = gp.n_training
        if n == 0:
            raise GPError("the GP has no training data")
        alpha = gp.alpha
        X = gp.X_train
        use_exact = self.bound_method == "exact" and samples is not None
        # Start from a small radius (half a lengthscale) and grow it until the
        # omitted-weight bound drops below Γ.  Starting small lets a loose Γ
        # select genuinely few points.
        radius = 0.5 * gp.kernel.lengthscale
        all_indices = np.arange(n)
        for _ in range(self.max_expansions):
            selected = np.array(sorted(index.search_within_distance(sample_box, radius)), dtype=int)
            if selected.size == n:
                return all_indices, 0.0, radius
            excluded_mask = np.ones(n, dtype=bool)
            if selected.size:
                excluded_mask[selected] = False
            if use_exact:
                omitted = gp.kernel(samples, X[excluded_mask]) @ alpha[excluded_mask]
                gamma = float(np.max(np.abs(omitted)))
            else:
                gamma = omitted_weight_bound(
                    gp.kernel,
                    X[excluded_mask],
                    alpha[excluded_mask],
                    sample_box,
                    subdivisions=self.subdivisions,
                )
            if gamma <= self.gamma_threshold and selected.size > 0:
                return selected, gamma, radius
            radius *= self.expansion_factor
        return all_indices, 0.0, radius

    # -- subset inference -----------------------------------------------------------
    def predict(
        self,
        gp: GaussianProcess,
        index: RTree,
        samples: np.ndarray,
        sample_box: Optional[BoundingBox] = None,
    ) -> LocalInferenceResult:
        """Local inference at ``samples`` (rows), per Algorithm 4."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        box = sample_box if sample_box is not None else BoundingBox.from_points(samples)
        selected, gamma, radius = self.select_points(gp, index, box, samples=samples)
        X_local = gp.X_train[selected]
        alpha_local = gp.alpha[selected]
        y_local = gp.y_train[selected]

        K_star = gp.kernel(samples, X_local)
        # Mean: global weights restricted to the local subset (the paper's
        # f̂_L approximation, whose error is bounded by γ), plus the GP's
        # constant mean offset.
        means = K_star @ alpha_local + gp.mean_offset
        # Variance: exact GP variance of the local model.
        K_local = gp.kernel(X_local, X_local) + gp.effective_noise() * np.eye(X_local.shape[0])
        L, _ = jittered_cholesky(K_local)
        K_local_inv = inverse_from_cholesky(L)
        tmp = K_star @ K_local_inv
        variances = gp.kernel.diag(samples) - np.sum(tmp * K_star, axis=1)
        variances = np.maximum(variances, 0.0)
        # y_local retained for debugging / introspection parity with the paper.
        del y_local
        return LocalInferenceResult(
            means=means,
            stds=np.sqrt(variances),
            selected_indices=selected,
            gamma=gamma,
            radius=radius,
        )

    # -- multi-query (batched) inference -------------------------------------------
    def predict_multi(
        self,
        gp: GaussianProcess,
        index: RTree,
        sample_sets: Sequence[np.ndarray],
        sample_boxes: Optional[Sequence[BoundingBox]] = None,
    ) -> list[LocalInferenceResult]:
        """Local inference for many tuples' sample sets in one pass.

        Produces the same numbers as calling :meth:`predict` once per sample
        set, but shares the expensive pieces across the batch through a
        :class:`BatchKernelCache`.  ``index`` is accepted for signature
        parity with :meth:`predict`; the batched path computes the same
        within-radius retrieval directly from the cached distance matrix.
        """
        del index  # retrieval is replaced by the vectorised distance matrix
        sample_sets = list(sample_sets)  # materialise once: generators welcome
        if not sample_sets:
            return []
        cache = BatchKernelCache(gp, sample_sets, sample_boxes)
        return [self.predict_cached(gp, cache, i) for i in range(len(cache.sample_sets))]

    def predict_cached(
        self, gp: GaussianProcess, cache: "BatchKernelCache", i: int
    ) -> LocalInferenceResult:
        """Local inference for tuple ``i`` of a batch, via the shared cache.

        Matches :meth:`predict` on ``cache.sample_sets[i]`` exactly: the
        per-tuple radius-expansion / exact-γ selection loop is replayed on
        the cached cross-covariance slice and distance column, and the local
        covariance inverse is cached per distinct selected subset.
        """
        K_rows = cache.rows(gp, i)
        alpha = gp.alpha
        selected, gamma, radius = self._select_from_distances(
            gp, alpha, cache.box_distances[:, i], K_rows, cache.boxes[i]
        )
        K_star = K_rows if selected.size == K_rows.shape[1] else K_rows[:, selected]
        means = K_star @ alpha[selected] + gp.mean_offset
        K_local_inv = cache.local_inverse(gp, selected)
        tmp = K_star @ K_local_inv
        variances = gp.kernel.diag(cache.sample_sets[i]) - np.sum(tmp * K_star, axis=1)
        variances = np.maximum(variances, 0.0)
        return LocalInferenceResult(
            means=means,
            stds=np.sqrt(variances),
            selected_indices=selected,
            gamma=gamma,
            radius=radius,
        )

    def _select_from_distances(
        self,
        gp: GaussianProcess,
        alpha: np.ndarray,
        distances: np.ndarray,
        K_rows: np.ndarray,
        sample_box: BoundingBox,
    ) -> tuple[np.ndarray, float, float]:
        """Replicate :meth:`select_points` from precomputed distances/kernels.

        ``distances`` holds each training point's distance to the tuple box
        (what the R-tree's within-radius search tests); ``K_rows`` is the
        tuple's slice of the stacked cross-covariance matrix, so the exact-γ
        check is a slice + matvec instead of a fresh kernel evaluation.
        """
        n = distances.size
        radius = 0.5 * gp.kernel.lengthscale
        all_indices = np.arange(n)
        for _ in range(self.max_expansions):
            selected = np.flatnonzero(distances <= radius)
            if selected.size == n:
                return all_indices, 0.0, radius
            excluded_mask = np.ones(n, dtype=bool)
            if selected.size:
                excluded_mask[selected] = False
            if self.bound_method == "exact":
                # One matvec against the cached row block with the kept
                # weights zeroed — exact zeros contribute nothing, so this
                # equals the per-tuple kernel(samples, X_excluded) @ alpha
                # computation without slicing a fresh matrix per expansion.
                excluded_alpha = np.where(excluded_mask, alpha, 0.0)
                omitted = K_rows @ excluded_alpha
                gamma = float(np.max(np.abs(omitted)))
            else:
                gamma = omitted_weight_bound(
                    gp.kernel,
                    gp.X_train[excluded_mask],
                    alpha[excluded_mask],
                    sample_box,
                    subdivisions=self.subdivisions,
                )
            if gamma <= self.gamma_threshold and selected.size > 0:
                return selected, gamma, radius
            radius *= self.expansion_factor
        return all_indices, 0.0, radius


class BatchKernelCache:
    """Shared kernel / geometry state for a batch of tuples' sample sets.

    Holds, for a chunk of tuples, everything multi-query inference reuses:

    * per-tuple cross-covariance row blocks, built lazily by :meth:`rows` —
      one kernel evaluation per tuple that the radius-expansion exact-γ
      checks, the predictive mean and the predictive variance all reuse
      (the per-tuple path re-evaluates the kernel on every expansion),
    * ``K_train`` — training covariance (local sub-matrices slice it),
    * ``box_distances`` — every training point's distance to every tuple's
      bounding box (replaces per-tuple R-tree searches), and
    * a per-subset cache of local covariance inverses (with a warm model
      neighbouring tuples usually select the same subset, so the
      ``O(l^3)`` factorisation is paid once).

    :meth:`sync` keeps the cache valid while the model evolves mid-batch:
    new training points append kernel *columns* / distance *rows* (cheap),
    and a hyperparameter change (retraining) rebuilds — lazily, so tuples
    processed after a retrain never pay for stale eager work.  All cached
    entries are elementwise identical to fresh kernel evaluations, which is
    what keeps the batched pipeline numerically equivalent to per-tuple
    execution.
    """

    def __init__(
        self,
        gp: GaussianProcess,
        sample_sets: Sequence[np.ndarray],
        sample_boxes: Optional[Sequence[BoundingBox]] = None,
    ):
        self.sample_sets = [np.atleast_2d(np.asarray(s, dtype=float)) for s in sample_sets]
        if not self.sample_sets:
            raise GPError("BatchKernelCache needs at least one sample set")
        self.boxes = (
            list(sample_boxes)
            if sample_boxes is not None
            else [BoundingBox.from_points(s) for s in self.sample_sets]
        )
        if len(self.boxes) != len(self.sample_sets):
            raise GPError("sample_boxes and sample_sets must align")
        if gp.n_training == 0:
            raise GPError("the GP has no training data")
        self._row_block: Optional[np.ndarray] = None
        self._row_index: Optional[int] = None
        self._row_n_train = 0
        self._rebuild(gp)

    def sync(self, gp: GaussianProcess) -> None:
        """Bring the cache up to date with the GP's current state."""
        theta = gp.kernel.theta.tobytes()
        if theta != self._theta:
            self._rebuild(gp)
            return
        if gp.n_training == self._n_train:
            return
        if gp.n_training < self._n_train:
            # The model shrank — a speculative multi-point addition was rolled
            # back.  Cached blocks are row/column-aligned with the training
            # set, so truncate them back to the surviving prefix (rollback
            # always restores a prefix state) and drop subset inverses that
            # may reference evicted rows.
            n = gp.n_training
            self.K_train = self.K_train[:n, :n]
            self.box_distances = self.box_distances[:n]
            if self._row_block is not None and self._row_n_train > n:
                self._row_block = self._row_block[:, :n]
                self._row_n_train = n
            self._n_train = n
            self._inverse_cache.clear()
            return
        X = gp.X_train
        X_new = X[self._n_train :]
        cross = gp.kernel(X[: self._n_train], X_new)
        block = gp.kernel(X_new, X_new)
        self.K_train = np.block([[self.K_train, cross], [cross.T, block]])
        self.box_distances = np.vstack(
            [self.box_distances, _distances_to_boxes(X_new, self.boxes)]
        )
        self._n_train = gp.n_training
        self._inverse_cache.clear()

    def rows(self, gp: GaussianProcess, i: int) -> np.ndarray:
        """Cross-covariance between tuple ``i``'s samples and the training set.

        Built on first use per tuple and kept in sync with model growth by
        appending columns for new training points, so one tuple's repeated
        inferences (initial bound check plus every refinement iteration)
        share a single base kernel evaluation.
        """
        self.sync(gp)
        if self._row_index == i and self._row_n_train == self._n_train:
            return self._row_block
        if self._row_index == i and 0 < self._row_n_train < self._n_train:
            X_new = gp.X_train[self._row_n_train :]
            self._row_block = np.hstack(
                [self._row_block, gp.kernel(self.sample_sets[i], X_new)]
            )
        else:
            self._row_block = gp.kernel(self.sample_sets[i], gp.X_train)
            self._row_index = i
        self._row_n_train = self._n_train
        return self._row_block

    def invalidate_rows(self) -> None:
        """Drop the one-slot cross-covariance row memo.

        The pipeline scheduler calls this before a commit-time re-inference:
        a speculative stage may have left a *partially grown* row block for
        the same tuple behind, and appending the missing columns instead of
        rebuilding could differ from a fresh evaluation in the last ulp —
        enough to diverge from the serial batched trajectory on a knife
        edge.  Invalidation forces the next :meth:`rows` call to rebuild the
        block exactly as the serial path would.
        """
        self._row_block = None
        self._row_index = None
        self._row_n_train = 0

    def local_inverse(self, gp: GaussianProcess, selected: np.ndarray) -> np.ndarray:
        """Inverse of the noise-augmented local covariance for a subset."""
        key = selected.tobytes()
        inverse = self._inverse_cache.get(key)
        if inverse is None:
            K_local = self.K_train[np.ix_(selected, selected)] + gp.effective_noise() * np.eye(
                selected.size
            )
            L, _ = jittered_cholesky(K_local)
            inverse = inverse_from_cholesky(L)
            self._inverse_cache[key] = inverse
        return inverse

    def _rebuild(self, gp: GaussianProcess) -> None:
        X = gp.X_train
        self.K_train = gp.kernel(X, X)
        self.box_distances = _distances_to_boxes(X, self.boxes)
        self._theta = gp.kernel.theta.tobytes()
        self._n_train = gp.n_training
        self._row_index = None
        self._row_block = None
        self._row_n_train = 0
        self._inverse_cache: dict[bytes, np.ndarray] = {}


def _distances_to_boxes(X: np.ndarray, boxes: Sequence[BoundingBox]) -> np.ndarray:
    """``(n_points, n_boxes)`` Euclidean distances from points to boxes.

    Matches :meth:`BoundingBox.min_distance_to_box` for degenerate point
    boxes, which is exactly what the R-tree's within-radius search tests.
    """
    lows = np.stack([box.low for box in boxes])
    highs = np.stack([box.high for box in boxes])
    gaps = np.maximum(
        0.0,
        np.maximum(lows[None, :, :] - X[:, None, :], X[:, None, :] - highs[None, :, :]),
    )
    return np.linalg.norm(gaps, axis=2)


def global_inference_cached(
    gp: GaussianProcess, cache: BatchKernelCache, i: int
) -> LocalInferenceResult:
    """Cached counterpart of :func:`global_inference` for tuple ``i``.

    Replicates :meth:`GaussianProcess.predict` (including its use of the
    model's own incrementally maintained ``K^{-1}``) with the kernel
    cross-covariance taken from the shared cache.
    """
    K_star = cache.rows(gp, i)
    means = K_star @ gp.alpha + gp.mean_offset
    tmp = K_star @ gp.K_inv
    variances = np.maximum(
        gp.kernel.diag(cache.sample_sets[i]) - np.sum(tmp * K_star, axis=1), 0.0
    )
    return LocalInferenceResult(
        means=means,
        stds=np.sqrt(variances),
        selected_indices=np.arange(gp.n_training),
        gamma=0.0,
        radius=float("inf"),
    )


def global_inference(gp: GaussianProcess, samples: np.ndarray) -> LocalInferenceResult:
    """Standard (global) inference packaged in the same result type.

    Used as the comparison point in Expt 1 and as a fallback when no
    spatial index is available.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    means, stds = gp.predict(samples, return_std=True)
    return LocalInferenceResult(
        means=means,
        stds=stds,
        selected_indices=np.arange(gp.n_training),
        gamma=0.0,
        radius=float("inf"),
    )
