"""Local inference: GP prediction from a nearby subset of training points (§5.1).

Global GP inference costs ``O(m n^2)`` for ``m`` test samples and ``n``
training points.  Because stationary kernels decay with distance, training
points far from the input samples contribute almost nothing to the weighted
average that forms the predictive mean.  Local inference therefore

1. builds a bounding box around the input samples,
2. retrieves from the R-tree the training points within a search radius of
   that box,
3. bounds the *omitted* contribution ``γ = max_j |Σ_{l excluded}
   k(x_j, x_l) α_l|`` using the nearest / farthest points of the box
   (optionally per sub-box for a tighter bound), and
4. grows the search radius until ``γ ≤ Γ``, the local-inference threshold,

and then runs inference using only the selected subset: the predictive mean
uses the *global* weight vector α restricted to the subset (exactly the
approximation analysed in the paper), while the predictive variance uses the
local covariance matrix, which is where the ``O(l^3 + m l^2)`` cost comes
from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import GPError
from repro.gp.kernels import Kernel
from repro.gp.linalg import inverse_from_cholesky, jittered_cholesky
from repro.gp.regression import GaussianProcess
from repro.index.bounding_box import BoundingBox
from repro.index.rtree import RTree


@dataclass(frozen=True)
class LocalInferenceResult:
    """Outcome of one local-inference call."""

    #: Predictive means at the input samples.
    means: np.ndarray
    #: Predictive standard deviations at the input samples.
    stds: np.ndarray
    #: Row indices (into the global training set) of the selected points.
    selected_indices: np.ndarray
    #: Upper bound on the omitted-weight error γ actually achieved.
    gamma: float
    #: Search radius at which the selection stopped.
    radius: float

    @property
    def n_selected(self) -> int:
        """Number of training points used for this inference."""
        return int(self.selected_indices.size)


def kernel_at_distance(kernel: Kernel, distances: np.ndarray) -> np.ndarray:
    """Evaluate an isotropic kernel as a function of Euclidean distance."""
    distances = np.atleast_1d(np.asarray(distances, dtype=float)).reshape(-1, 1)
    origin = np.zeros((1, 1))
    return kernel(origin, distances).ravel()


def omitted_weight_bound(
    kernel: Kernel,
    excluded_points: np.ndarray,
    excluded_alpha: np.ndarray,
    sample_box: BoundingBox,
    subdivisions: int = 2,
) -> float:
    """Upper bound on ``γ`` — the mean-prediction error of dropping points.

    For every excluded training point the kernel value at any sample is
    bracketed by its value at the farthest and nearest points of the sample
    bounding box; multiplying by the point's α weight and summing gives an
    interval containing the omitted contribution for *every* sample at once.
    Sub-dividing the sample box and taking the max over sub-boxes tightens
    the bound (the paper's implementation detail).
    """
    excluded_points = np.atleast_2d(np.asarray(excluded_points, dtype=float))
    excluded_alpha = np.asarray(excluded_alpha, dtype=float).ravel()
    if excluded_points.shape[0] == 0:
        return 0.0
    if excluded_points.shape[0] != excluded_alpha.size:
        raise GPError("excluded_points and excluded_alpha must align")
    boxes = sample_box.subdivide(max(1, subdivisions))
    worst = 0.0
    for box in boxes:
        near = np.array([box.min_distance_to(p) for p in excluded_points])
        far = np.array([box.max_distance_to(p) for p in excluded_points])
        k_near = kernel_at_distance(kernel, near)
        k_far = kernel_at_distance(kernel, far)
        low = np.minimum(k_near * excluded_alpha, k_far * excluded_alpha)
        high = np.maximum(k_near * excluded_alpha, k_far * excluded_alpha)
        gamma_box = max(abs(float(np.sum(low))), abs(float(np.sum(high))))
        worst = max(worst, gamma_box)
    return worst


def initial_search_radius(kernel: Kernel, alpha: np.ndarray, gamma_threshold: float) -> float:
    """Heuristic starting radius for the training-point retrieval.

    Solves ``k(r) * Σ|α| = Γ`` for the squared-exponential-like decay
    ``k(r) = σ_f² exp(-r²/(2 l²))``; beyond this radius even the worst-case
    sum of omitted weights is below the threshold, so it is a natural place
    to start before the exact bound refines the selection.
    """
    total_weight = float(np.sum(np.abs(alpha)))
    signal = kernel.signal_std**2
    if total_weight <= 0 or gamma_threshold >= signal * total_weight:
        return kernel.lengthscale
    ratio = signal * total_weight / gamma_threshold
    return kernel.lengthscale * math.sqrt(2.0 * math.log(ratio))


class LocalInferenceEngine:
    """Selects nearby training points and runs subset GP inference.

    ``bound_method`` chooses how the omitted contribution γ is bounded:

    * ``"exact"`` (default) evaluates ``γ = max_j |Σ_excluded k(x_j, x_l) α_l|``
      over the actual Monte-Carlo samples — an O(m·n) vectorised computation
      that allows positive and negative weights to cancel and therefore keeps
      very few points;
    * ``"box"`` is the paper's conservative bounding-box bound that never
      touches the individual samples (O(n) per check).
    """

    def __init__(
        self,
        gamma_threshold: float,
        subdivisions: int = 2,
        expansion_factor: float = 1.5,
        max_expansions: int = 30,
        bound_method: str = "exact",
    ):
        if gamma_threshold <= 0:
            raise GPError("gamma_threshold must be positive")
        if expansion_factor <= 1.0:
            raise GPError("expansion_factor must exceed 1")
        if bound_method not in ("exact", "box"):
            raise GPError(f"unknown bound_method {bound_method!r}")
        self.gamma_threshold = float(gamma_threshold)
        self.subdivisions = int(subdivisions)
        self.expansion_factor = float(expansion_factor)
        self.max_expansions = int(max_expansions)
        self.bound_method = bound_method

    # -- point selection ---------------------------------------------------------
    def select_points(
        self,
        gp: GaussianProcess,
        index: RTree,
        sample_box: BoundingBox,
        samples: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, float, float]:
        """Indices of the training points to keep, plus the achieved γ and radius."""
        n = gp.n_training
        if n == 0:
            raise GPError("the GP has no training data")
        alpha = gp.alpha
        X = gp.X_train
        use_exact = self.bound_method == "exact" and samples is not None
        # Start from a small radius (half a lengthscale) and grow it until the
        # omitted-weight bound drops below Γ.  Starting small lets a loose Γ
        # select genuinely few points.
        radius = 0.5 * gp.kernel.lengthscale
        all_indices = np.arange(n)
        for _ in range(self.max_expansions):
            selected = np.array(sorted(index.search_within_distance(sample_box, radius)), dtype=int)
            if selected.size == n:
                return all_indices, 0.0, radius
            excluded_mask = np.ones(n, dtype=bool)
            if selected.size:
                excluded_mask[selected] = False
            if use_exact:
                omitted = gp.kernel(samples, X[excluded_mask]) @ alpha[excluded_mask]
                gamma = float(np.max(np.abs(omitted)))
            else:
                gamma = omitted_weight_bound(
                    gp.kernel,
                    X[excluded_mask],
                    alpha[excluded_mask],
                    sample_box,
                    subdivisions=self.subdivisions,
                )
            if gamma <= self.gamma_threshold and selected.size > 0:
                return selected, gamma, radius
            radius *= self.expansion_factor
        return all_indices, 0.0, radius

    # -- subset inference -----------------------------------------------------------
    def predict(
        self,
        gp: GaussianProcess,
        index: RTree,
        samples: np.ndarray,
        sample_box: Optional[BoundingBox] = None,
    ) -> LocalInferenceResult:
        """Local inference at ``samples`` (rows), per Algorithm 4."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        box = sample_box if sample_box is not None else BoundingBox.from_points(samples)
        selected, gamma, radius = self.select_points(gp, index, box, samples=samples)
        X_local = gp.X_train[selected]
        alpha_local = gp.alpha[selected]
        y_local = gp.y_train[selected]

        K_star = gp.kernel(samples, X_local)
        # Mean: global weights restricted to the local subset (the paper's
        # f̂_L approximation, whose error is bounded by γ), plus the GP's
        # constant mean offset.
        means = K_star @ alpha_local + gp.mean_offset
        # Variance: exact GP variance of the local model.
        K_local = gp.kernel(X_local, X_local) + gp.effective_noise() * np.eye(X_local.shape[0])
        L, _ = jittered_cholesky(K_local)
        K_local_inv = inverse_from_cholesky(L)
        tmp = K_star @ K_local_inv
        variances = gp.kernel.diag(samples) - np.sum(tmp * K_star, axis=1)
        variances = np.maximum(variances, 0.0)
        # y_local retained for debugging / introspection parity with the paper.
        del y_local
        return LocalInferenceResult(
            means=means,
            stds=np.sqrt(variances),
            selected_indices=selected,
            gamma=gamma,
            radius=radius,
        )

    # -- multi-query (batched) inference -------------------------------------------
    def predict_multi(
        self,
        gp: GaussianProcess,
        index: RTree,
        sample_sets: Sequence[np.ndarray],
        sample_boxes: Optional[Sequence[BoundingBox]] = None,
    ) -> list[LocalInferenceResult]:
        """Local inference for many tuples' sample sets in one pass.

        Produces the same numbers as calling :meth:`predict` once per sample
        set, but shares the expensive pieces across the batch through a
        :class:`BatchKernelCache`.  ``index`` is accepted for signature
        parity with :meth:`predict`; the batched path computes the same
        within-radius retrieval directly from the cached distance matrix.
        """
        del index  # retrieval is replaced by the vectorised distance matrix
        sample_sets = list(sample_sets)  # materialise once: generators welcome
        if not sample_sets:
            return []
        cache = BatchKernelCache(gp, sample_sets, sample_boxes)
        return [self.predict_cached(gp, cache, i) for i in range(len(cache.sample_sets))]

    def predict_cached_block(
        self, gp: GaussianProcess, cache: "BatchKernelCache", indices: Sequence[int]
    ) -> list[LocalInferenceResult]:
        """Column-wise :meth:`predict_cached` with grouped kernel algebra.

        Produces bit-identical results to calling :meth:`predict_cached`
        per index: the per-tuple selection loop is replayed unchanged (it
        is data-dependent), but tuples that selected the *same* training
        subset — the common case under a warm model, and always the case
        when every box sits within the first search radius — share one
        tall GEMM for the predictive means and one for the variance
        row-sums.  BLAS computes each row block of a tall product exactly
        as it computes the block alone (verified at import by
        :func:`repro.distributions.columns.stacking_supported`; callers
        gate on it).
        """
        indices = list(indices)
        alpha = gp.alpha
        row_blocks = [cache.rows(gp, i) for i in indices]
        selections = self._select_from_distances_block(
            gp,
            alpha,
            cache.box_distances[:, indices],
            row_blocks,
            [cache.boxes[i] for i in indices],
        )
        groups: dict[bytes, list[int]] = {}
        for pos in range(len(indices)):
            groups.setdefault(selections[pos][0].tobytes(), []).append(pos)
        results: list[Optional[LocalInferenceResult]] = [None] * len(indices)
        for positions in groups.values():
            selected = selections[positions[0]][0]
            if len(positions) == 1:
                pos = positions[0]
                results[pos] = self.predict_cached(gp, cache, indices[pos])
                continue
            blocks = [row_blocks[pos] for pos in positions]
            narrow = selected.size != blocks[0].shape[1]
            K_local_inv = cache.local_inverse(gp, selected)
            for batch in _row_batches([b.shape[0] for b in blocks], selected.size):
                tall = _stacked_rows([blocks[k] for k in batch])
                if narrow:
                    # One column gather on the stacked view instead of one
                    # per block: the gathered rows are the same per-block
                    # ``block[:, selected]`` slices.
                    tall = tall[:, selected]
                sample_tall = _stacked_rows(
                    [cache.sample_sets[indices[positions[k]]] for k in batch]
                )
                means_tall = tall @ alpha[selected] + gp.mean_offset
                tmp_tall = tall @ K_local_inv
                rowsum_tall = np.sum(tmp_tall * tall, axis=1)
                # The prior variance is pointwise (``diag`` maps each sample
                # row independently), so one tall subtract / clamp / sqrt is
                # elementwise-identical to the per-tuple slices it replaces.
                stds_tall = np.sqrt(
                    np.maximum(gp.kernel.diag(sample_tall) - rowsum_tall, 0.0)
                )
                offset = 0
                for k in batch:
                    pos = positions[k]
                    rows = blocks[k].shape[0]
                    results[pos] = LocalInferenceResult(
                        means=means_tall[offset : offset + rows],
                        stds=stds_tall[offset : offset + rows],
                        selected_indices=selections[pos][0],
                        gamma=selections[pos][1],
                        radius=selections[pos][2],
                    )
                    offset += rows
        return [result for result in results if result is not None]

    def predict_cached(
        self, gp: GaussianProcess, cache: "BatchKernelCache", i: int
    ) -> LocalInferenceResult:
        """Local inference for tuple ``i`` of a batch, via the shared cache.

        Matches :meth:`predict` on ``cache.sample_sets[i]`` exactly: the
        per-tuple radius-expansion / exact-γ selection loop is replayed on
        the cached cross-covariance slice and distance column, and the local
        covariance inverse is cached per distinct selected subset.
        """
        K_rows = cache.rows(gp, i)
        alpha = gp.alpha
        selected, gamma, radius = self._select_from_distances(
            gp, alpha, cache.box_distances[:, i], K_rows, cache.boxes[i]
        )
        K_star = K_rows if selected.size == K_rows.shape[1] else K_rows[:, selected]
        means = K_star @ alpha[selected] + gp.mean_offset
        K_local_inv = cache.local_inverse(gp, selected)
        tmp = K_star @ K_local_inv
        variances = gp.kernel.diag(cache.sample_sets[i]) - np.sum(tmp * K_star, axis=1)
        variances = np.maximum(variances, 0.0)
        return LocalInferenceResult(
            means=means,
            stds=np.sqrt(variances),
            selected_indices=selected,
            gamma=gamma,
            radius=radius,
        )

    def _select_from_distances(
        self,
        gp: GaussianProcess,
        alpha: np.ndarray,
        distances: np.ndarray,
        K_rows: np.ndarray,
        sample_box: BoundingBox,
    ) -> tuple[np.ndarray, float, float]:
        """Replicate :meth:`select_points` from precomputed distances/kernels.

        ``distances`` holds each training point's distance to the tuple box
        (what the R-tree's within-radius search tests); ``K_rows`` is the
        tuple's slice of the stacked cross-covariance matrix, so the exact-γ
        check is a slice + matvec instead of a fresh kernel evaluation.
        """
        n = distances.size
        radius = 0.5 * gp.kernel.lengthscale
        all_indices = np.arange(n)
        for _ in range(self.max_expansions):
            selected = np.flatnonzero(distances <= radius)
            if selected.size == n:
                return all_indices, 0.0, radius
            excluded_mask = np.ones(n, dtype=bool)
            if selected.size:
                excluded_mask[selected] = False
            if self.bound_method == "exact":
                # One matvec against the cached row block with the kept
                # weights zeroed — exact zeros contribute nothing, so this
                # equals the per-tuple kernel(samples, X_excluded) @ alpha
                # computation without slicing a fresh matrix per expansion.
                excluded_alpha = np.where(excluded_mask, alpha, 0.0)
                omitted = K_rows @ excluded_alpha
                gamma = float(np.max(np.abs(omitted)))
            else:
                gamma = omitted_weight_bound(
                    gp.kernel,
                    gp.X_train[excluded_mask],
                    alpha[excluded_mask],
                    sample_box,
                    subdivisions=self.subdivisions,
                )
            if gamma <= self.gamma_threshold and selected.size > 0:
                return selected, gamma, radius
            radius *= self.expansion_factor
        return all_indices, 0.0, radius

    def _select_from_distances_block(
        self,
        gp: GaussianProcess,
        alpha: np.ndarray,
        distances: np.ndarray,
        row_blocks: Sequence[np.ndarray],
        sample_boxes: Sequence[BoundingBox],
    ) -> list[tuple[np.ndarray, float, float]]:
        """Column-wise :meth:`_select_from_distances` over a chunk of tuples.

        Replays the same radius-expansion schedule for every tuple at once:
        one broadcast threshold test per level replaces the per-tuple
        ``flatnonzero`` scans, and tuples whose excluded sets coincide at a
        level — the common case under a warm model — share one stacked
        exact-γ matvec whose row-block slices equal the per-tuple products
        (the identity :func:`repro.distributions.columns.stacking_supported`
        probes; callers gate on it).  Interval-bound configurations keep the
        scalar loop, which is the only path exercising the box-geometry
        bound.
        """
        n, count = distances.shape
        if self.bound_method != "exact":
            return [
                self._select_from_distances(
                    gp, alpha, distances[:, pos], row_blocks[pos], sample_boxes[pos]
                )
                for pos in range(count)
            ]
        radius = 0.5 * gp.kernel.lengthscale
        all_indices = np.arange(n)
        results: list[Optional[tuple[np.ndarray, float, float]]] = [None] * count
        uniform = len({block.shape for block in row_blocks}) == 1
        pending = list(range(count))
        for _ in range(self.max_expansions):
            if not pending:
                break
            mask = distances[:, pending] <= radius
            n_selected = mask.sum(axis=0)
            need_gamma: list[tuple[int, int]] = []
            for col, pos in enumerate(pending):
                if int(n_selected[col]) == n:
                    results[pos] = (all_indices, 0.0, radius)
                else:
                    need_gamma.append((col, pos))
            still_pending: list[int] = []
            if need_gamma:
                cols = [col for col, _ in need_gamma]
                positions = [pos for _, pos in need_gamma]
                # Exact zeros for the kept weights: each row's matvec then
                # equals the per-tuple kernel(samples, X_excluded) @ alpha
                # product.  One batched matmul covers every pending tuple's
                # exact-γ check — its per-item products are the 2-D matvecs
                # they replace (identity 4 of the stacking probe) — and the
                # operand is a free reshape whenever the row blocks are
                # adjacent slices of the armed stack.
                excluded = np.where(mask[:, cols].T, 0.0, alpha[None, :])
                gammas: list[float] = []
                if uniform:
                    rows = row_blocks[positions[0]].shape[0]
                    for batch in _row_batches([rows] * len(positions), n):
                        tall = _stacked_rows([row_blocks[positions[k]] for k in batch])
                        stack3 = tall.reshape(len(batch), rows, n)
                        omitted = np.matmul(
                            stack3, excluded[batch[0] : batch[-1] + 1, :, None]
                        )[:, :, 0]
                        gammas.extend(np.abs(omitted).max(axis=1).tolist())
                else:
                    for k, pos in enumerate(positions):
                        omitted = row_blocks[pos] @ excluded[k]
                        gammas.append(float(np.max(np.abs(omitted))))
                selected_cache: dict[bytes, np.ndarray] = {}
                for (col, pos), gamma in zip(need_gamma, gammas):
                    if gamma <= self.gamma_threshold:
                        key = np.ascontiguousarray(mask[:, col]).tobytes()
                        selected = selected_cache.get(key)
                        if selected is None:
                            selected = np.flatnonzero(mask[:, col])
                            selected_cache[key] = selected
                        if selected.size > 0:
                            results[pos] = (selected, float(gamma), radius)
                            continue
                    still_pending.append(pos)
            pending = still_pending
            radius *= self.expansion_factor
        for pos in pending:
            results[pos] = (all_indices, 0.0, radius)
        return [result for result in results if result is not None]


#: Cap on stacked-operand elements (rows × columns) for grouped GEMMs.  A
#: tall product is computed in row batches under this cap: the batches'
#: results are identical to the monolithic product (row-block identity), but
#: the operands stay cache-resident instead of streaming multi-megabyte
#: temporaries through memory — which measures *slower* than a per-tuple loop.
_MAX_STACK_ELEMENTS = 262_144

#: Sample rows per grouped kernel evaluation when arming a columnar stack:
#: large enough to amortise the kernel's per-call array passes, small enough
#: that the grouped distance/exponential temporaries stay cache-resident.
_ARM_GROUP_ROWS = 1024


def _stacked_rows(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """The vertical concatenation of ``blocks``, as a view when possible.

    The columnar cache serves row blocks as consecutive slices of one armed
    stack, so concatenating them back is a no-op — this detects that case
    (same C-contiguous base, adjacent row ranges) and returns a slice of the
    base instead of copying.  The view holds exactly the values ``vstack``
    would copy, so downstream kernels see identical operands.
    """
    first = blocks[0]
    base = first.base
    width = first.shape[1]
    if (
        base is None
        or not base.flags["C_CONTIGUOUS"]
        or base.shape[-1] != width
        or base.size % width != 0
    ):
        return np.vstack(blocks)
    itemsize = first.itemsize
    pointer = first.__array_interface__["data"][0]
    expected = pointer
    total = 0
    for block in blocks:
        if (
            block.base is not base
            or block.ndim != 2
            or block.shape[1] != width
            or not block.flags["C_CONTIGUOUS"]
            or block.__array_interface__["data"][0] != expected
        ):
            return np.vstack(blocks)
        expected += block.nbytes
        total += block.shape[0]
    flat = base.reshape(-1, width)
    start = (pointer - base.__array_interface__["data"][0]) // (width * itemsize)
    return flat[start : start + total]


def _row_batches(counts: Sequence[int], n_cols: int) -> list[list[int]]:
    """Partition block positions so each stacked operand stays under the cap."""
    width = max(int(n_cols), 1)
    batches: list[list[int]] = []
    current: list[int] = []
    elements = 0
    for pos, rows in enumerate(counts):
        cost = int(rows) * width
        if current and elements + cost > _MAX_STACK_ELEMENTS:
            batches.append(current)
            current = []
            elements = 0
        current.append(pos)
        elements += cost
    if current:
        batches.append(current)
    return batches


class BatchKernelCache:
    """Shared kernel / geometry state for a batch of tuples' sample sets.

    Holds, for a chunk of tuples, everything multi-query inference reuses:

    * per-tuple cross-covariance row blocks, built lazily by :meth:`rows` —
      one kernel evaluation per tuple that the radius-expansion exact-γ
      checks, the predictive mean and the predictive variance all reuse
      (the per-tuple path re-evaluates the kernel on every expansion),
    * ``K_train`` — training covariance (local sub-matrices slice it),
    * ``box_distances`` — every training point's distance to every tuple's
      bounding box (replaces per-tuple R-tree searches), and
    * a per-subset cache of local covariance inverses (with a warm model
      neighbouring tuples usually select the same subset, so the
      ``O(l^3)`` factorisation is paid once).

    :meth:`sync` keeps the cache valid while the model evolves mid-batch:
    new training points append kernel *columns* / distance *rows* (cheap),
    and a hyperparameter change (retraining) rebuilds — lazily, so tuples
    processed after a retrain never pay for stale eager work.  All cached
    entries are elementwise identical to fresh kernel evaluations, which is
    what keeps the batched pipeline numerically equivalent to per-tuple
    execution.
    """

    def __init__(
        self,
        gp: GaussianProcess,
        sample_sets: Sequence[np.ndarray],
        sample_boxes: Optional[Sequence[BoundingBox]] = None,
    ):
        self.sample_sets = [np.atleast_2d(np.asarray(s, dtype=float)) for s in sample_sets]
        if not self.sample_sets:
            raise GPError("BatchKernelCache needs at least one sample set")
        self.boxes = (
            list(sample_boxes)
            if sample_boxes is not None
            else [BoundingBox.from_points(s) for s in self.sample_sets]
        )
        if len(self.boxes) != len(self.sample_sets):
            raise GPError("sample_boxes and sample_sets must align")
        if gp.n_training == 0:
            raise GPError("the GP has no training data")
        self._row_block: Optional[np.ndarray] = None
        self._row_index: Optional[int] = None
        self._row_n_train = 0
        self._rebuild(gp)

    def sync(self, gp: GaussianProcess) -> None:
        """Bring the cache up to date with the GP's current state."""
        theta = gp.kernel.theta.tobytes()
        if theta != self._theta:
            self._rebuild(gp)
            return
        if gp.n_training == self._n_train:
            return
        if gp.n_training < self._n_train:
            # The model shrank — a speculative multi-point addition was rolled
            # back.  Cached blocks are row/column-aligned with the training
            # set, so truncate them back to the surviving prefix (rollback
            # always restores a prefix state) and drop subset inverses that
            # may reference evicted rows.
            n = gp.n_training
            self.K_train = self.K_train[:n, :n]
            self.box_distances = self.box_distances[:n]
            if self._row_block is not None and self._row_n_train > n:
                self._row_block = self._row_block[:, :n]
                self._row_n_train = n
            self._n_train = n
            self._inverse_cache.clear()
            return
        X = gp.X_train
        X_new = X[self._n_train :]
        cross = gp.kernel(X[: self._n_train], X_new)
        block = gp.kernel(X_new, X_new)
        self.K_train = np.block([[self.K_train, cross], [cross.T, block]])
        self.box_distances = np.vstack(
            [self.box_distances, _distances_to_boxes(X_new, self.boxes)]
        )
        self._n_train = gp.n_training
        self._inverse_cache.clear()

    def rows(self, gp: GaussianProcess, i: int) -> np.ndarray:
        """Cross-covariance between tuple ``i``'s samples and the training set.

        Built on first use per tuple and kept in sync with model growth by
        appending columns for new training points, so one tuple's repeated
        inferences (initial bound check plus every refinement iteration)
        share a single base kernel evaluation.
        """
        self.sync(gp)
        if self._row_index == i and self._row_n_train == self._n_train:
            return self._row_block
        if self._row_index == i and 0 < self._row_n_train < self._n_train:
            X_new = gp.X_train[self._row_n_train :]
            self._row_block = np.hstack(
                [self._row_block, gp.kernel(self.sample_sets[i], X_new)]
            )
        else:
            self._row_block = gp.kernel(self.sample_sets[i], gp.X_train)
            self._row_index = i
        self._row_n_train = self._n_train
        return self._row_block

    def invalidate_rows(self) -> None:
        """Drop the one-slot cross-covariance row memo.

        The pipeline scheduler calls this before a commit-time re-inference:
        a speculative stage may have left a *partially grown* row block for
        the same tuple behind, and appending the missing columns instead of
        rebuilding could differ from a fresh evaluation in the last ulp —
        enough to diverge from the serial batched trajectory on a knife
        edge.  Invalidation forces the next :meth:`rows` call to rebuild the
        block exactly as the serial path would.
        """
        self._row_block = None
        self._row_index = None
        self._row_n_train = 0

    def local_inverse(self, gp: GaussianProcess, selected: np.ndarray) -> np.ndarray:
        """Inverse of the noise-augmented local covariance for a subset."""
        key = selected.tobytes()
        inverse = self._inverse_cache.get(key)
        if inverse is None:
            K_local = self.K_train[np.ix_(selected, selected)] + gp.effective_noise() * np.eye(
                selected.size
            )
            L, _ = jittered_cholesky(K_local)
            inverse = inverse_from_cholesky(L)
            self._inverse_cache[key] = inverse
        return inverse

    def _rebuild(self, gp: GaussianProcess) -> None:
        X = gp.X_train
        self.K_train = gp.kernel(X, X)
        self.box_distances = _distances_to_boxes(X, self.boxes)
        self._theta = gp.kernel.theta.tobytes()
        self._n_train = gp.n_training
        self._row_index = None
        self._row_block = None
        self._row_n_train = 0
        self._inverse_cache: dict[bytes, np.ndarray] = {}


class ColumnarKernelCache(BatchKernelCache):
    """A :class:`BatchKernelCache` whose row blocks come from one stacked eval.

    The tuple-store cache evaluates ``kernel(samples_i, X_train)`` lazily,
    once per tuple.  The columnar cache *arms* instead: it evaluates the
    kernel once on the vertical stack of every (remaining) tuple's sample
    set and serves each tuple's block as a slice — the stacked evaluation
    computes exactly the same elementwise kernel values, so a slice is
    bit-identical to the per-tuple evaluation it replaces.

    A slice is only served while the model fingerprint (kernel
    hyperparameters + training-set size) still matches the one the stack
    was armed under; any mid-chunk model movement falls back to the base
    class's lazy per-tuple path.  Re-arming is throttled: at a new-tuple
    boundary the stack is rebuilt only when the model held still across
    the entire previous tuple (refinement has stopped firing), at most
    :data:`MAX_ARMS` times per chunk, and only with at least two tuples
    left to amortise the stacked evaluation over.
    """

    #: Hard cap on stacked kernel evaluations per chunk (arming is O(B·m·n)).
    MAX_ARMS = 4

    def __init__(
        self,
        gp: GaussianProcess,
        sample_sets: Sequence[np.ndarray],
        sample_boxes: Optional[Sequence[BoundingBox]] = None,
    ):
        super().__init__(gp, sample_sets, sample_boxes)
        self._stack: Optional[np.ndarray] = None
        self._stack_fp: Optional[tuple[bytes, int]] = None
        self._stack_start = 0
        self._stack_offsets: Optional[np.ndarray] = None
        self._arms = 0
        self._boundary_index: Optional[int] = None
        self._boundary_fp: Optional[tuple[bytes, int]] = None
        self._arm(gp, 0)

    def _fingerprint(self) -> tuple[bytes, int]:
        return (self._theta, self._n_train)

    def _arm(self, gp: GaussianProcess, start: int) -> None:
        """Evaluate the stacked row block for tuples ``start..end`` (throttled).

        The stack is assembled from *grouped* kernel evaluations — a few
        tuples' sample sets concatenated per call — rather than one call per
        tuple or one chunk-tall call.  The values are identical all three
        ways (the kernel is elementwise over GEMM row blocks, one of the
        identities ``stacking_supported`` probes), but grouping amortises
        the per-call dispatch of the kernel's seven array passes while the
        grouped distance/exponential temporaries stay cache-resident —
        both endpoints measure slower.
        """
        if len(self.sample_sets) - start < 2 or self._arms >= self.MAX_ARMS:
            return
        self._arms += 1
        remaining = self.sample_sets[start:]
        parts = []
        group: list[np.ndarray] = []
        rows = 0
        for s in remaining:
            if group and rows + s.shape[0] > _ARM_GROUP_ROWS:
                parts.append(group)
                group, rows = [], 0
            group.append(s)
            rows += s.shape[0]
        if group:
            parts.append(group)
        self._stack = np.vstack(
            [
                gp.kernel(part[0] if len(part) == 1 else np.concatenate(part, axis=0), gp.X_train)
                for part in parts
            ]
        )
        counts = [s.shape[0] for s in remaining]
        self._stack_offsets = np.concatenate([[0], np.cumsum(counts)])
        self._stack_start = start
        self._stack_fp = self._fingerprint()

    def ensure_armed(self, gp: GaussianProcess, start: int) -> bool:
        """Arm (or re-arm) so tuples ``start..end`` are servable as slices.

        Unlike the boundary heuristic in :meth:`rows`, this arms eagerly —
        it is the entry point for a batched re-pass after a mid-chunk model
        move, where the caller has already decided to redo the remaining
        tuples as one column operation.  Still throttled by
        :data:`MAX_ARMS`; returns whether slices are now servable.
        """
        self.sync(gp)
        fp = self._fingerprint()
        if self._stack is None or self._stack_fp != fp or start < self._stack_start:
            self._arm(gp, start)
        return (
            self._stack is not None
            and self._stack_fp == fp
            and start >= self._stack_start
        )

    def stack_ready(self, gp: GaussianProcess) -> bool:
        """Whether every tuple's row block is currently servable as a slice."""
        self.sync(gp)
        return (
            self._stack is not None
            and self._stack_fp == self._fingerprint()
            and self._stack_start == 0
        )

    def rows(self, gp: GaussianProcess, i: int) -> np.ndarray:
        """Tuple ``i``'s cross-covariance block, sliced from the armed stack.

        Falls back to the lazy base-class evaluation whenever the stack is
        stale; the served slice also seeds the base class's one-slot memo
        so mid-tuple model growth appends columns to the slice exactly as
        it would to a fresh block.
        """
        self.sync(gp)
        fp = self._fingerprint()
        if i != self._boundary_index:
            stale = (
                self._stack is None or self._stack_fp != fp or i < self._stack_start
            )
            if stale and fp == self._boundary_fp:
                self._arm(gp, i)
            self._boundary_index = i
            self._boundary_fp = fp
        if (
            self._stack is not None
            and self._stack_fp == fp
            and i >= self._stack_start
        ):
            lo = int(self._stack_offsets[i - self._stack_start])
            hi = int(self._stack_offsets[i - self._stack_start + 1])
            block = self._stack[lo:hi]
            self._row_block = block
            self._row_index = i
            self._row_n_train = self._n_train
            return block
        return super().rows(gp, i)


def _distances_to_boxes(X: np.ndarray, boxes: Sequence[BoundingBox]) -> np.ndarray:
    """``(n_points, n_boxes)`` Euclidean distances from points to boxes.

    Matches :meth:`BoundingBox.min_distance_to_box` for degenerate point
    boxes, which is exactly what the R-tree's within-radius search tests.
    """
    lows = np.stack([box.low for box in boxes])
    highs = np.stack([box.high for box in boxes])
    gaps = np.maximum(
        0.0,
        np.maximum(lows[None, :, :] - X[:, None, :], X[:, None, :] - highs[None, :, :]),
    )
    return np.linalg.norm(gaps, axis=2)


def global_inference_cached(
    gp: GaussianProcess, cache: BatchKernelCache, i: int
) -> LocalInferenceResult:
    """Cached counterpart of :func:`global_inference` for tuple ``i``.

    Replicates :meth:`GaussianProcess.predict` (including its use of the
    model's own incrementally maintained ``K^{-1}``) with the kernel
    cross-covariance taken from the shared cache.
    """
    K_star = cache.rows(gp, i)
    means = K_star @ gp.alpha + gp.mean_offset
    tmp = K_star @ gp.K_inv
    variances = np.maximum(
        gp.kernel.diag(cache.sample_sets[i]) - np.sum(tmp * K_star, axis=1), 0.0
    )
    return LocalInferenceResult(
        means=means,
        stds=np.sqrt(variances),
        selected_indices=np.arange(gp.n_training),
        gamma=0.0,
        radius=float("inf"),
    )


def global_inference_cached_block(
    gp: GaussianProcess, cache: BatchKernelCache, indices: Sequence[int]
) -> list[LocalInferenceResult]:
    """Column-wise :func:`global_inference_cached` via one tall GEMM pair.

    Bit-identical per tuple (BLAS computes each row block of a stacked
    product exactly as it computes the block alone; callers gate on
    :func:`repro.distributions.columns.stacking_supported`).
    """
    indices = list(indices)
    if not indices:
        return []
    blocks = [cache.rows(gp, i) for i in indices]
    results: list[Optional[LocalInferenceResult]] = [None] * len(indices)
    for batch in _row_batches([b.shape[0] for b in blocks], gp.n_training):
        tall = np.vstack([blocks[pos] for pos in batch])
        means_tall = tall @ gp.alpha + gp.mean_offset
        tmp_tall = tall @ gp.K_inv
        rowsum_tall = np.sum(tmp_tall * tall, axis=1)
        offset = 0
        for pos in batch:
            i = indices[pos]
            rows = blocks[pos].shape[0]
            variances = np.maximum(
                gp.kernel.diag(cache.sample_sets[i]) - rowsum_tall[offset : offset + rows],
                0.0,
            )
            results[pos] = LocalInferenceResult(
                means=means_tall[offset : offset + rows],
                stds=np.sqrt(variances),
                selected_indices=np.arange(gp.n_training),
                gamma=0.0,
                radius=float("inf"),
            )
            offset += rows
    return [result for result in results if result is not None]


def global_inference(gp: GaussianProcess, samples: np.ndarray) -> LocalInferenceResult:
    """Standard (global) inference packaged in the same result type.

    Used as the comparison point in Expt 1 and as a fallback when no
    spatial index is available.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    means, stds = gp.predict(samples, return_std=True)
    return LocalInferenceResult(
        means=means,
        stds=stds,
        selected_indices=np.arange(gp.n_training),
        gamma=0.0,
        radius=float("inf"),
    )
