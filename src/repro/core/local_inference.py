"""Local inference: GP prediction from a nearby subset of training points (§5.1).

Global GP inference costs ``O(m n^2)`` for ``m`` test samples and ``n``
training points.  Because stationary kernels decay with distance, training
points far from the input samples contribute almost nothing to the weighted
average that forms the predictive mean.  Local inference therefore

1. builds a bounding box around the input samples,
2. retrieves from the R-tree the training points within a search radius of
   that box,
3. bounds the *omitted* contribution ``γ = max_j |Σ_{l excluded}
   k(x_j, x_l) α_l|`` using the nearest / farthest points of the box
   (optionally per sub-box for a tighter bound), and
4. grows the search radius until ``γ ≤ Γ``, the local-inference threshold,

and then runs inference using only the selected subset: the predictive mean
uses the *global* weight vector α restricted to the subset (exactly the
approximation analysed in the paper), while the predictive variance uses the
local covariance matrix, which is where the ``O(l^3 + m l^2)`` cost comes
from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import GPError
from repro.gp.kernels import Kernel
from repro.gp.linalg import inverse_from_cholesky, jittered_cholesky
from repro.gp.regression import GaussianProcess
from repro.index.bounding_box import BoundingBox
from repro.index.rtree import RTree


@dataclass(frozen=True)
class LocalInferenceResult:
    """Outcome of one local-inference call."""

    #: Predictive means at the input samples.
    means: np.ndarray
    #: Predictive standard deviations at the input samples.
    stds: np.ndarray
    #: Row indices (into the global training set) of the selected points.
    selected_indices: np.ndarray
    #: Upper bound on the omitted-weight error γ actually achieved.
    gamma: float
    #: Search radius at which the selection stopped.
    radius: float

    @property
    def n_selected(self) -> int:
        """Number of training points used for this inference."""
        return int(self.selected_indices.size)


def kernel_at_distance(kernel: Kernel, distances: np.ndarray) -> np.ndarray:
    """Evaluate an isotropic kernel as a function of Euclidean distance."""
    distances = np.atleast_1d(np.asarray(distances, dtype=float)).reshape(-1, 1)
    origin = np.zeros((1, 1))
    return kernel(origin, distances).ravel()


def omitted_weight_bound(
    kernel: Kernel,
    excluded_points: np.ndarray,
    excluded_alpha: np.ndarray,
    sample_box: BoundingBox,
    subdivisions: int = 2,
) -> float:
    """Upper bound on ``γ`` — the mean-prediction error of dropping points.

    For every excluded training point the kernel value at any sample is
    bracketed by its value at the farthest and nearest points of the sample
    bounding box; multiplying by the point's α weight and summing gives an
    interval containing the omitted contribution for *every* sample at once.
    Sub-dividing the sample box and taking the max over sub-boxes tightens
    the bound (the paper's implementation detail).
    """
    excluded_points = np.atleast_2d(np.asarray(excluded_points, dtype=float))
    excluded_alpha = np.asarray(excluded_alpha, dtype=float).ravel()
    if excluded_points.shape[0] == 0:
        return 0.0
    if excluded_points.shape[0] != excluded_alpha.size:
        raise GPError("excluded_points and excluded_alpha must align")
    boxes = sample_box.subdivide(max(1, subdivisions))
    worst = 0.0
    for box in boxes:
        near = np.array([box.min_distance_to(p) for p in excluded_points])
        far = np.array([box.max_distance_to(p) for p in excluded_points])
        k_near = kernel_at_distance(kernel, near)
        k_far = kernel_at_distance(kernel, far)
        low = np.minimum(k_near * excluded_alpha, k_far * excluded_alpha)
        high = np.maximum(k_near * excluded_alpha, k_far * excluded_alpha)
        gamma_box = max(abs(float(np.sum(low))), abs(float(np.sum(high))))
        worst = max(worst, gamma_box)
    return worst


def initial_search_radius(kernel: Kernel, alpha: np.ndarray, gamma_threshold: float) -> float:
    """Heuristic starting radius for the training-point retrieval.

    Solves ``k(r) * Σ|α| = Γ`` for the squared-exponential-like decay
    ``k(r) = σ_f² exp(-r²/(2 l²))``; beyond this radius even the worst-case
    sum of omitted weights is below the threshold, so it is a natural place
    to start before the exact bound refines the selection.
    """
    total_weight = float(np.sum(np.abs(alpha)))
    signal = kernel.signal_std**2
    if total_weight <= 0 or gamma_threshold >= signal * total_weight:
        return kernel.lengthscale
    ratio = signal * total_weight / gamma_threshold
    return kernel.lengthscale * math.sqrt(2.0 * math.log(ratio))


class LocalInferenceEngine:
    """Selects nearby training points and runs subset GP inference.

    ``bound_method`` chooses how the omitted contribution γ is bounded:

    * ``"exact"`` (default) evaluates ``γ = max_j |Σ_excluded k(x_j, x_l) α_l|``
      over the actual Monte-Carlo samples — an O(m·n) vectorised computation
      that allows positive and negative weights to cancel and therefore keeps
      very few points;
    * ``"box"`` is the paper's conservative bounding-box bound that never
      touches the individual samples (O(n) per check).
    """

    def __init__(
        self,
        gamma_threshold: float,
        subdivisions: int = 2,
        expansion_factor: float = 1.5,
        max_expansions: int = 30,
        bound_method: str = "exact",
    ):
        if gamma_threshold <= 0:
            raise GPError("gamma_threshold must be positive")
        if expansion_factor <= 1.0:
            raise GPError("expansion_factor must exceed 1")
        if bound_method not in ("exact", "box"):
            raise GPError(f"unknown bound_method {bound_method!r}")
        self.gamma_threshold = float(gamma_threshold)
        self.subdivisions = int(subdivisions)
        self.expansion_factor = float(expansion_factor)
        self.max_expansions = int(max_expansions)
        self.bound_method = bound_method

    # -- point selection ---------------------------------------------------------
    def select_points(
        self,
        gp: GaussianProcess,
        index: RTree,
        sample_box: BoundingBox,
        samples: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, float, float]:
        """Indices of the training points to keep, plus the achieved γ and radius."""
        n = gp.n_training
        if n == 0:
            raise GPError("the GP has no training data")
        alpha = gp.alpha
        X = gp.X_train
        use_exact = self.bound_method == "exact" and samples is not None
        # Start from a small radius (half a lengthscale) and grow it until the
        # omitted-weight bound drops below Γ.  Starting small lets a loose Γ
        # select genuinely few points.
        radius = 0.5 * gp.kernel.lengthscale
        all_indices = np.arange(n)
        for _ in range(self.max_expansions):
            selected = np.array(sorted(index.search_within_distance(sample_box, radius)), dtype=int)
            if selected.size == n:
                return all_indices, 0.0, radius
            excluded_mask = np.ones(n, dtype=bool)
            if selected.size:
                excluded_mask[selected] = False
            if use_exact:
                omitted = gp.kernel(samples, X[excluded_mask]) @ alpha[excluded_mask]
                gamma = float(np.max(np.abs(omitted)))
            else:
                gamma = omitted_weight_bound(
                    gp.kernel,
                    X[excluded_mask],
                    alpha[excluded_mask],
                    sample_box,
                    subdivisions=self.subdivisions,
                )
            if gamma <= self.gamma_threshold and selected.size > 0:
                return selected, gamma, radius
            radius *= self.expansion_factor
        return all_indices, 0.0, radius

    # -- subset inference -----------------------------------------------------------
    def predict(
        self,
        gp: GaussianProcess,
        index: RTree,
        samples: np.ndarray,
        sample_box: Optional[BoundingBox] = None,
    ) -> LocalInferenceResult:
        """Local inference at ``samples`` (rows), per Algorithm 4."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        box = sample_box if sample_box is not None else BoundingBox.from_points(samples)
        selected, gamma, radius = self.select_points(gp, index, box, samples=samples)
        X_local = gp.X_train[selected]
        alpha_local = gp.alpha[selected]
        y_local = gp.y_train[selected]

        K_star = gp.kernel(samples, X_local)
        # Mean: global weights restricted to the local subset (the paper's
        # f̂_L approximation, whose error is bounded by γ), plus the GP's
        # constant mean offset.
        means = K_star @ alpha_local + gp.mean_offset
        # Variance: exact GP variance of the local model.
        K_local = gp.kernel(X_local, X_local) + gp.effective_noise() * np.eye(X_local.shape[0])
        L, _ = jittered_cholesky(K_local)
        K_local_inv = inverse_from_cholesky(L)
        tmp = K_star @ K_local_inv
        variances = gp.kernel.diag(samples) - np.sum(tmp * K_star, axis=1)
        variances = np.maximum(variances, 0.0)
        # y_local retained for debugging / introspection parity with the paper.
        del y_local
        return LocalInferenceResult(
            means=means,
            stds=np.sqrt(variances),
            selected_indices=selected,
            gamma=gamma,
            radius=radius,
        )


def global_inference(gp: GaussianProcess, samples: np.ndarray) -> LocalInferenceResult:
    """Standard (global) inference packaged in the same result type.

    Used as the comparison point in Expt 1 and as a fallback when no
    spatial index is available.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    means, stds = gp.predict(samples, return_std=True)
    return LocalInferenceResult(
        means=means,
        stds=stds,
        selected_indices=np.arange(gp.n_training),
        gamma=0.0,
        radius=float("inf"),
    )
