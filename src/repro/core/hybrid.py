"""Hybrid GP / Monte-Carlo execution (§5.4 and the Expt 5/7 rules).

The better approach for a given UDF depends on how expensive the UDF is and
how many training points the GP needs, which grows with dimensionality and
function complexity.  The hybrid executor encodes the rules distilled in
Section 6.3:

* very fast functions (≤ 0.01 ms per call) — always plain Monte Carlo;
* low-dimensional functions (d ≤ 2) — use the GP once evaluation exceeds
  about 1 ms;
* high-dimensional functions (up to d = 10) — use the GP only when
  evaluation exceeds about 100 ms;
* otherwise — measure: run a few tuples with both approaches and keep the
  faster one for the rest of the stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal, Optional

from repro.core.accuracy import AccuracyRequirement
from repro.core.mc_baseline import MCResult, monte_carlo_output
from repro.core.olgapro import OLGAPRO, OnlineTupleResult
from repro.distributions.base import Distribution
from repro.exceptions import GPError
from repro.rng import RandomState, as_generator
from repro.udf.base import UDF

Method = Literal["gp", "mc", "measure"]

#: Evaluation time (seconds) below which MC always wins.
FAST_FUNCTION_CUTOFF = 1e-5
#: Evaluation time above which the GP wins for low-dimensional UDFs.
LOW_DIM_GP_CUTOFF = 1e-3
#: Evaluation time above which the GP wins even for high-dimensional UDFs.
HIGH_DIM_GP_CUTOFF = 1e-1
#: Dimensionality treated as "low" by the rules.
LOW_DIMENSION = 2


def rule_based_choice(dimension: int, eval_time: float) -> Method:
    """Static rule from the paper's evaluation: pick GP, MC, or 'measure'."""
    if dimension <= 0:
        raise GPError("dimension must be positive")
    if eval_time < 0:
        raise GPError("eval_time must be non-negative")
    if eval_time <= FAST_FUNCTION_CUTOFF:
        return "mc"
    if dimension <= LOW_DIMENSION:
        return "gp" if eval_time >= LOW_DIM_GP_CUTOFF else "measure"
    if eval_time >= HIGH_DIM_GP_CUTOFF:
        return "gp"
    if eval_time <= LOW_DIM_GP_CUTOFF:
        return "mc"
    return "measure"


@dataclass(frozen=True)
class HybridDecision:
    """The method the hybrid executor settled on and why."""

    method: Literal["gp", "mc"]
    measured_eval_time: float
    dimension: int
    #: Whether the decision came from the static rule or from measurement.
    source: Literal["rule", "measured"]


class HybridExecutor:
    """Chooses between OLGAPRO and plain Monte Carlo for a UDF, then runs it."""

    def __init__(
        self,
        udf: UDF,
        requirement: AccuracyRequirement | None = None,
        probe_tuples: int = 2,
        random_state: RandomState = None,
        **olgapro_kwargs,
    ):
        self.udf = udf
        self.requirement = requirement if requirement is not None else AccuracyRequirement()
        self.probe_tuples = int(probe_tuples)
        self._rng = as_generator(random_state)
        self._olgapro = OLGAPRO(
            udf, requirement=self.requirement, random_state=self._rng, **olgapro_kwargs
        )
        self._decision: Optional[HybridDecision] = None

    @property
    def decision(self) -> Optional[HybridDecision]:
        """The decision made so far (``None`` until the first tuple)."""
        return self._decision

    def reseed(self, rng) -> None:
        """Point this executor and its inner OLGAPRO at a new stream."""
        self._rng = rng
        self._olgapro.reseed(rng)

    def decide(self, input_distribution: Distribution) -> HybridDecision:
        """Pick GP or MC for this UDF, measuring if the static rule is unsure."""
        if self._decision is not None:
            return self._decision
        eval_time = self.udf.measure_eval_time(n_probes=5, random_state=self._rng)
        choice = rule_based_choice(self.udf.dimension, eval_time)
        if choice in ("gp", "mc"):
            self._decision = HybridDecision(
                method=choice,
                measured_eval_time=eval_time,
                dimension=self.udf.dimension,
                source="rule",
            )
            return self._decision
        # Measure: run a couple of tuples each way and keep the faster one.
        gp_time = 0.0
        mc_time = 0.0
        for _ in range(max(1, self.probe_tuples)):
            started = time.perf_counter()
            charged = self.udf.charged_time
            self._olgapro.process(input_distribution, random_state=self._rng)
            gp_time += (time.perf_counter() - started) + (self.udf.charged_time - charged)

            started = time.perf_counter()
            charged = self.udf.charged_time
            monte_carlo_output(
                self.udf,
                input_distribution,
                requirement=self.requirement,
                random_state=self._rng,
            )
            mc_time += (time.perf_counter() - started) + (self.udf.charged_time - charged)
        method: Literal["gp", "mc"] = "gp" if gp_time <= mc_time else "mc"
        self._decision = HybridDecision(
            method=method,
            measured_eval_time=eval_time,
            dimension=self.udf.dimension,
            source="measured",
        )
        return self._decision

    def process(
        self, input_distribution: Distribution, random_state: RandomState = None
    ) -> OnlineTupleResult | MCResult:
        """Process a tuple with whichever method the executor has chosen."""
        decision = self.decide(input_distribution)
        if decision.method == "gp":
            return self._olgapro.process(input_distribution, random_state=random_state)
        return monte_carlo_output(
            self.udf,
            input_distribution,
            requirement=self.requirement,
            random_state=random_state if random_state is not None else self._rng,
        )
