"""Core framework: the paper's primary contribution (S2–S10).

Public surface: approximation metrics, accuracy requirements and budgets,
the Monte-Carlo baseline, the GP emulator and offline Algorithm 2, error
bounds and confidence bands, local inference, online tuning and retraining,
selection-predicate filtering, the complete online algorithm OLGAPRO, and
the hybrid GP/MC executor.
"""

from repro.core.accuracy import (
    AccuracyRequirement,
    ErrorBudget,
    ks_epsilon_for_samples,
    required_mc_samples,
)
from repro.core.confidence_bands import (
    SimultaneousBand,
    band_z_value,
    expected_euler_characteristic,
    lipschitz_killing_curvatures,
)
from repro.core.emulator import GPEmulator, GPOutputResult, emulate_output, offline_gp_output
from repro.core.error_bounds import (
    CombinedErrorBound,
    EnvelopeOutputs,
    build_envelope_outputs,
    combine_bounds,
    gp_discrepancy_bound,
    gp_discrepancy_bound_naive,
    gp_ks_bound,
    interval_probability_bounds,
)
from repro.core.filtering import (
    FilterDecision,
    SelectionPredicate,
    filtering_decision,
    hoeffding_half_width,
    upper_bound_decision,
)
from repro.core.hybrid import HybridDecision, HybridExecutor, rule_based_choice
from repro.core.local_inference import (
    LocalInferenceEngine,
    LocalInferenceResult,
    global_inference,
    initial_search_radius,
    kernel_at_distance,
    omitted_weight_bound,
)
from repro.core.mc_baseline import (
    FilteredMCResult,
    MCResult,
    mc_sample_count,
    monte_carlo_output,
    monte_carlo_with_filter,
)
from repro.core.metrics import (
    discrepancy,
    discrepancy_against_cdf,
    interval_probability_error,
    ks_distance,
    lambda_discrepancy,
    lambda_discrepancy_naive,
)
from repro.core.olgapro import OLGAPRO, FilteredOnlineResult, OnlineTupleResult
from repro.core.online_tuning import (
    LargestVarianceStrategy,
    OptimalGreedyStrategy,
    RandomStrategy,
    TuningStrategy,
    make_strategy,
)
from repro.core.retraining import (
    EagerRetrain,
    NeverRetrain,
    RetrainDecision,
    RetrainingPolicy,
    ThresholdRetrain,
    make_policy,
)

__all__ = [
    # metrics
    "discrepancy",
    "ks_distance",
    "lambda_discrepancy",
    "lambda_discrepancy_naive",
    "discrepancy_against_cdf",
    "interval_probability_error",
    # accuracy
    "AccuracyRequirement",
    "ErrorBudget",
    "required_mc_samples",
    "ks_epsilon_for_samples",
    # MC baseline
    "MCResult",
    "FilteredMCResult",
    "monte_carlo_output",
    "monte_carlo_with_filter",
    "mc_sample_count",
    # filtering
    "SelectionPredicate",
    "FilterDecision",
    "filtering_decision",
    "hoeffding_half_width",
    "upper_bound_decision",
    # emulator
    "GPEmulator",
    "GPOutputResult",
    "emulate_output",
    "offline_gp_output",
    # bands and bounds
    "SimultaneousBand",
    "band_z_value",
    "expected_euler_characteristic",
    "lipschitz_killing_curvatures",
    "EnvelopeOutputs",
    "build_envelope_outputs",
    "gp_discrepancy_bound",
    "gp_discrepancy_bound_naive",
    "gp_ks_bound",
    "interval_probability_bounds",
    "CombinedErrorBound",
    "combine_bounds",
    # local inference
    "LocalInferenceEngine",
    "LocalInferenceResult",
    "global_inference",
    "omitted_weight_bound",
    "initial_search_radius",
    "kernel_at_distance",
    # tuning / retraining
    "TuningStrategy",
    "LargestVarianceStrategy",
    "RandomStrategy",
    "OptimalGreedyStrategy",
    "make_strategy",
    "RetrainingPolicy",
    "RetrainDecision",
    "NeverRetrain",
    "EagerRetrain",
    "ThresholdRetrain",
    "make_policy",
    # online algorithm and hybrid
    "OLGAPRO",
    "OnlineTupleResult",
    "FilteredOnlineResult",
    "HybridExecutor",
    "HybridDecision",
    "rule_based_choice",
]
