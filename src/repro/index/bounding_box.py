"""Axis-aligned bounding boxes in d dimensions.

Local inference (Section 5.1) builds a bounding box around the Monte-Carlo
input samples, retrieves training points within a distance threshold of that
box from an R-tree, and uses nearest / furthest box points to bound the
kernel weight of excluded training points.  This module provides the box
geometry those steps need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import IndexError_


@dataclass(frozen=True, eq=False)
class BoundingBox:
    """Axis-aligned box ``[low_i, high_i]`` per dimension."""

    low: np.ndarray
    high: np.ndarray

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundingBox):
            return NotImplemented
        return bool(np.array_equal(self.low, other.low) and np.array_equal(self.high, other.high))

    def __hash__(self) -> int:
        return hash((self.low.tobytes(), self.high.tobytes()))

    def __post_init__(self) -> None:
        low = np.atleast_1d(np.asarray(self.low, dtype=float))
        high = np.atleast_1d(np.asarray(self.high, dtype=float))
        if low.shape != high.shape or low.ndim != 1:
            raise IndexError_(
                f"bounding box corners must be 1-D and equal length, got {low.shape} and {high.shape}"
            )
        if np.any(high < low):
            raise IndexError_("bounding box high corner must dominate the low corner")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def from_points(points: np.ndarray) -> "BoundingBox":
        """Smallest box containing every row of ``points`` (shape ``(m, d)``)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.size == 0:
            raise IndexError_("cannot build a bounding box from zero points")
        return BoundingBox(pts.min(axis=0), pts.max(axis=0))

    @staticmethod
    def from_point(point: np.ndarray) -> "BoundingBox":
        """Degenerate box containing a single point."""
        p = np.atleast_1d(np.asarray(point, dtype=float))
        return BoundingBox(p.copy(), p.copy())

    # -- geometry ---------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of spatial dimensions."""
        return self.low.size

    @property
    def center(self) -> np.ndarray:
        """Geometric centre of the box."""
        return (self.low + self.high) / 2.0

    @property
    def lengths(self) -> np.ndarray:
        """Edge length per dimension."""
        return self.high - self.low

    def volume(self) -> float:
        """Product of edge lengths (0 for degenerate boxes)."""
        return float(np.prod(self.lengths))

    def margin(self) -> float:
        """Sum of edge lengths; the R-tree split heuristic minimises this."""
        return float(np.sum(self.lengths))

    def contains_point(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the box."""
        p = np.atleast_1d(np.asarray(point, dtype=float))
        return bool(np.all(p >= self.low) and np.all(p <= self.high))

    def contains_box(self, other: "BoundingBox") -> bool:
        """Whether ``other`` is fully inside this box."""
        return bool(np.all(other.low >= self.low) and np.all(other.high <= self.high))

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap (boundaries touching counts)."""
        return bool(np.all(self.low <= other.high) and np.all(other.low <= self.high))

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    def expand(self, amount: float | np.ndarray) -> "BoundingBox":
        """Box grown by ``amount`` on every side (per-dimension if an array)."""
        amount_arr = np.broadcast_to(np.asarray(amount, dtype=float), self.low.shape)
        if np.any(amount_arr < 0):
            raise IndexError_("expansion amount must be non-negative")
        return BoundingBox(self.low - amount_arr, self.high + amount_arr)

    def enlargement(self, other: "BoundingBox") -> float:
        """Volume increase needed to absorb ``other`` (R-tree insert heuristic)."""
        return self.union(other).volume() - self.volume()

    # -- distances used by local inference ---------------------------------------
    def nearest_point_to(self, point: np.ndarray) -> np.ndarray:
        """Point of the box closest to ``point`` (``x_near`` in Fig. 3)."""
        p = np.atleast_1d(np.asarray(point, dtype=float))
        return np.clip(p, self.low, self.high)

    def farthest_point_to(self, point: np.ndarray) -> np.ndarray:
        """Corner of the box farthest from ``point`` (``x_far`` in Fig. 3)."""
        p = np.atleast_1d(np.asarray(point, dtype=float))
        choose_high = np.abs(self.high - p) >= np.abs(p - self.low)
        return np.where(choose_high, self.high, self.low)

    def min_distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the box (0 if inside)."""
        p = np.atleast_1d(np.asarray(point, dtype=float))
        return float(np.linalg.norm(p - self.nearest_point_to(p)))

    def max_distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to its farthest box corner."""
        p = np.atleast_1d(np.asarray(point, dtype=float))
        return float(np.linalg.norm(p - self.farthest_point_to(p)))

    def min_distance_to_box(self, other: "BoundingBox") -> float:
        """Smallest Euclidean distance between any two points of the boxes."""
        gaps = np.maximum(0.0, np.maximum(other.low - self.high, self.low - other.high))
        return float(np.linalg.norm(gaps))

    def subdivide(self, parts_per_dim: int) -> list["BoundingBox"]:
        """Split the box into a regular grid of ``parts_per_dim**d`` sub-boxes.

        This is the tightening trick in Section 5.1: computing the kernel
        weight bound per sub-box and taking the max yields a tighter bound
        than using the whole sample box at once.
        """
        if parts_per_dim <= 0:
            raise IndexError_("parts_per_dim must be positive")
        if parts_per_dim == 1:
            return [self]
        edges = [
            np.linspace(self.low[i], self.high[i], parts_per_dim + 1)
            for i in range(self.dimension)
        ]
        boxes: list[BoundingBox] = []
        index = np.zeros(self.dimension, dtype=int)
        total = parts_per_dim**self.dimension
        for flat in range(total):
            rem = flat
            for i in range(self.dimension):
                index[i] = rem % parts_per_dim
                rem //= parts_per_dim
            low = np.array([edges[i][index[i]] for i in range(self.dimension)])
            high = np.array([edges[i][index[i] + 1] for i in range(self.dimension)])
            boxes.append(BoundingBox(low, high))
        return boxes


def union_of_boxes(boxes: Iterable[BoundingBox]) -> BoundingBox:
    """Smallest box containing all boxes in ``boxes`` (must be non-empty)."""
    boxes = list(boxes)
    if not boxes:
        raise IndexError_("union_of_boxes requires at least one box")
    result = boxes[0]
    for box in boxes[1:]:
        result = result.union(box)
    return result
