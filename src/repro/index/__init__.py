"""Spatial-index substrate (S7): bounding boxes and a from-scratch R-tree."""

from repro.index.bounding_box import BoundingBox, union_of_boxes
from repro.index.rtree import RTree

__all__ = ["BoundingBox", "union_of_boxes", "RTree"]
