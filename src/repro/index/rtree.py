"""An in-memory R-tree over points.

Section 5.1 of the paper stores the GP training points "in an R-tree" so
local inference can efficiently retrieve the points within a distance
threshold of the input-sample bounding box.  No external spatial library is
assumed; this is a from-scratch quadratic-split R-tree specialised for point
data with integer payloads (the row index of the training point).

Supported queries:

* :meth:`RTree.insert` — incremental insertion (training points arrive online).
* :meth:`RTree.search_box` — all payloads whose point lies inside a box.
* :meth:`RTree.search_within_distance` — all payloads within Euclidean
  distance ``r`` of a query box, the exact operation local inference needs.
* :meth:`RTree.nearest` — k nearest neighbours (used by workload tooling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import heapq
import itertools

import numpy as np

from repro.exceptions import IndexError_
from repro.index.bounding_box import BoundingBox


@dataclass(eq=False)
class _Entry:
    """A child of an R-tree node: either a data point or a subtree."""

    box: BoundingBox
    payload: Optional[int] = None
    child: Optional["_Node"] = None
    point: Optional[np.ndarray] = None

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None


@dataclass(eq=False)
class _Node:
    """An internal or leaf node of the R-tree."""

    leaf: bool
    entries: list[_Entry] = field(default_factory=list)
    parent: Optional["_Node"] = None

    def box(self) -> BoundingBox:
        result = self.entries[0].box
        for entry in self.entries[1:]:
            result = result.union(entry.box)
        return result


class RTree:
    """Quadratic-split R-tree over d-dimensional points."""

    def __init__(self, dimension: int, max_entries: int = 16, min_entries: int | None = None):
        if dimension <= 0:
            raise IndexError_(f"dimension must be positive, got {dimension}")
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        self.dimension = int(dimension)
        self.max_entries = int(max_entries)
        self.min_entries = int(min_entries) if min_entries is not None else max(2, max_entries // 3)
        if self.min_entries * 2 > self.max_entries:
            raise IndexError_("min_entries must be at most half of max_entries")
        self._root = _Node(leaf=True)
        self._size = 0

    # -- public API --------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def insert(self, point: np.ndarray, payload: int) -> None:
        """Insert ``point`` with an integer ``payload`` (e.g. a row index)."""
        p = np.atleast_1d(np.asarray(point, dtype=float))
        if p.shape != (self.dimension,):
            raise IndexError_(
                f"point has shape {p.shape}, expected ({self.dimension},)"
            )
        entry = _Entry(box=BoundingBox.from_point(p), payload=int(payload), point=p.copy())
        leaf = self._choose_leaf(self._root, entry.box)
        leaf.entries.append(entry)
        self._adjust_tree(leaf)
        self._size += 1

    def bulk_load(self, points: np.ndarray, payloads: Iterable[int] | None = None) -> None:
        """Insert many points; payloads default to running row indices."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if payloads is None:
            payloads = range(self._size, self._size + pts.shape[0])
        for point, payload in zip(pts, payloads):
            self.insert(point, payload)

    def search_box(self, box: BoundingBox) -> list[int]:
        """Payloads of all points falling inside ``box``."""
        results: list[int] = []
        self._search_box(self._root, box, results)
        return results

    def search_within_distance(self, box: BoundingBox, radius: float) -> list[int]:
        """Payloads of all points within Euclidean distance ``radius`` of ``box``.

        This is the retrieval primitive used by local inference: the query
        box is the bounding box of the input samples and ``radius`` is the
        maximum distance implied by the local-inference threshold Γ.
        """
        if radius < 0:
            raise IndexError_("radius must be non-negative")
        results: list[int] = []
        self._search_distance(self._root, box, radius, results)
        return results

    def nearest(self, point: np.ndarray, k: int = 1) -> list[int]:
        """Payloads of the ``k`` points nearest to ``point`` (best-first search)."""
        if k <= 0:
            raise IndexError_("k must be positive")
        if self._size == 0:
            return []
        p = np.atleast_1d(np.asarray(point, dtype=float))
        counter = itertools.count()
        heap: list[tuple[float, int, _Entry | _Node]] = [(0.0, next(counter), self._root)]
        found: list[int] = []
        while heap and len(found) < k:
            dist, _, item = heapq.heappop(heap)
            if isinstance(item, _Node):
                for entry in item.entries:
                    d = entry.box.min_distance_to(p)
                    target = entry.child if entry.child is not None else entry
                    heapq.heappush(heap, (d, next(counter), target))
            else:
                found.append(int(item.payload))
        return found

    def all_payloads(self) -> list[int]:
        """All payloads stored in the tree (order unspecified)."""
        results: list[int] = []
        self._collect(self._root, results)
        return results

    def height(self) -> int:
        """Tree height (1 for a tree whose root is a leaf)."""
        node = self._root
        h = 1
        while not node.leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Validate structural invariants; raises ``IndexError_`` on violation.

        Used by property-based tests: every child box must be contained in
        its parent entry box, and all leaves must sit at the same depth.
        """
        depths: set[int] = set()
        self._check(self._root, None, 1, depths)
        if len(depths) > 1:
            raise IndexError_(f"leaves at multiple depths: {sorted(depths)}")

    # -- internals -----------------------------------------------------------
    def _choose_leaf(self, node: _Node, box: BoundingBox) -> _Node:
        while not node.leaf:
            best_entry = min(
                node.entries,
                key=lambda e: (e.box.enlargement(box), e.box.volume()),
            )
            best_entry.box = best_entry.box.union(box)
            node = best_entry.child  # type: ignore[assignment]
        return node

    def _adjust_tree(self, node: _Node) -> None:
        while True:
            if len(node.entries) > self.max_entries:
                node = self._split(node)
            parent = node.parent
            if parent is None:
                return
            for entry in parent.entries:
                if entry.child is node:
                    entry.box = node.box()
                    break
            node = parent

    def _split(self, node: _Node) -> _Node:
        """Quadratic split; returns the parent node to continue adjustment."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        box_a = group_a[0].box
        box_b = group_b[0].box
        while remaining:
            # Force assignment if one group must take all remaining entries
            # to reach the minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                for e in remaining:
                    box_a = box_a.union(e.box)
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                for e in remaining:
                    box_b = box_b.union(e.box)
                remaining = []
                break
            entry = self._pick_next(remaining, box_a, box_b)
            remaining.remove(entry)
            grow_a = box_a.enlargement(entry.box)
            grow_b = box_b.enlargement(entry.box)
            if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
                group_a.append(entry)
                box_a = box_a.union(entry.box)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.box)

        sibling = _Node(leaf=node.leaf, entries=group_b, parent=node.parent)
        node.entries = group_a
        for entry in sibling.entries:
            if entry.child is not None:
                entry.child.parent = sibling

        if node.parent is None:
            new_root = _Node(leaf=False)
            new_root.entries = [
                _Entry(box=node.box(), child=node),
                _Entry(box=sibling.box(), child=sibling),
            ]
            node.parent = new_root
            sibling.parent = new_root
            self._root = new_root
            return new_root
        parent = node.parent
        parent.entries.append(_Entry(box=sibling.box(), child=sibling))
        return parent

    @staticmethod
    def _pick_seeds(entries: list[_Entry]) -> tuple[int, int]:
        worst = -1.0
        pair = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i].box.union(entries[j].box)
                waste = combined.volume() - entries[i].box.volume() - entries[j].box.volume()
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    @staticmethod
    def _pick_next(remaining: list[_Entry], box_a: BoundingBox, box_b: BoundingBox) -> _Entry:
        best_entry = remaining[0]
        best_diff = -1.0
        for entry in remaining:
            diff = abs(box_a.enlargement(entry.box) - box_b.enlargement(entry.box))
            if diff > best_diff:
                best_diff = diff
                best_entry = entry
        return best_entry

    def _search_box(self, node: _Node, box: BoundingBox, results: list[int]) -> None:
        for entry in node.entries:
            if not box.intersects(entry.box):
                continue
            if node.leaf:
                results.append(int(entry.payload))
            else:
                self._search_box(entry.child, box, results)  # type: ignore[arg-type]

    def _search_distance(
        self, node: _Node, box: BoundingBox, radius: float, results: list[int]
    ) -> None:
        for entry in node.entries:
            if entry.box.min_distance_to_box(box) > radius:
                continue
            if node.leaf:
                results.append(int(entry.payload))
            else:
                self._search_distance(entry.child, box, radius, results)  # type: ignore[arg-type]

    def _collect(self, node: _Node, results: list[int]) -> None:
        for entry in node.entries:
            if node.leaf:
                results.append(int(entry.payload))
            else:
                self._collect(entry.child, results)  # type: ignore[arg-type]

    def _check(self, node: _Node, parent_box: BoundingBox | None, depth: int, depths: set[int]) -> None:
        if parent_box is not None:
            for entry in node.entries:
                if not parent_box.contains_box(entry.box):
                    raise IndexError_("child entry box escapes its parent box")
        if node.leaf:
            depths.add(depth)
            return
        for entry in node.entries:
            if entry.child is None:
                raise IndexError_("internal node entry without a child")
            if entry.child.parent is not node:
                raise IndexError_("broken parent pointer")
            self._check(entry.child, entry.box, depth + 1, depths)
