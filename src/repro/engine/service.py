"""Always-on concurrent query service with anytime results.

The serving layer turns the batch-oriented engine into a long-lived
process: one :class:`QueryService` owns a private asyncio event loop (on a
dedicated thread, exactly like
:class:`~repro.engine.transport.AsyncioTransport` owns its loop) plus a
shared worker pool, and accepts many concurrent queries onto that shared
budget.  Each submitted query runs as one coroutine that pulls its
operator iterator one row at a time through the pool, so

* **admission control** is explicit — at most ``queue_limit`` queries are
  in flight, and the next submission fails fast with a typed
  :class:`~repro.exceptions.ServiceOverloadError` instead of queueing
  unboundedly;
* **fair scheduling** falls out of the FIFO slot semaphore — every
  in-flight query waits its turn for the next row-pull, so a long query
  cannot starve short ones;
* **anytime results** stream as :class:`QueryEvent` records — the
  ``(tuple_id, verdict, bound, version)`` quadruple of
  :class:`~repro.engine.result.TupleVerdict` — the moment OLGAPRO's
  per-tuple bounds settle, before the final bit-identical-to-serial
  :class:`~repro.engine.result.QueryResult` materialises;
* **failure isolation** is typed — ``breaker_threshold`` consecutive
  failed queries naming the same UDF open that UDF's circuit breaker, so
  later submissions fast-fail with
  :class:`~repro.exceptions.CircuitOpenError` (no queue slot, no engine
  work) until a cooldown elapses and a single half-open probe query
  decides whether the black box recovered;
* **cancellation and timeouts** provably release transport resources:
  evaluation transports open and close *inside* each chunk computation
  (the close-on-every-exit-path contract of
  :mod:`repro.engine.transport`), so abandoning a query between row
  pulls leaks neither threads nor event loops, and a chunk already on a
  pool thread simply drains there and closes its own transport.

Determinism contract: a query's rows are pulled strictly sequentially by
its coroutine — concurrency exists only *across* queries — so each query
observes exactly the iteration its operator tree would produce serially.
With a fresh engine per query (what :class:`~repro.engine.session.Session`
constructs) the served result is bit-identical to running the same query
on the same seed directly.

The opt-in ``share_models=True`` routes every query's per-UDF emulators
through the region's live
:class:`~repro.core.shared_model.SharedEmulatorStore` (keyed by
``(udf name, region)``): each query publishes its paid-for training rows
as it evaluates and cold processors seed from the store, so *concurrent*
same-region queries all warm-start — there is no loaned object to race
for (the pre-store loan cache served one in-flight query per trained
emulator; a concurrent loser retrained cold).  Warm-started emulators
skip retraining but make results depend on service history, which is why
sharing is off by default.
"""

from __future__ import annotations

import asyncio
import itertools
import queue
import threading
import time
from concurrent.futures import Future as ConcurrentFuture
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.core.shared_model import SharedEmulatorStore
from repro.engine.result import QueryResult, TupleVerdict, classify_row
from repro.engine.tuples import Relation
from repro.exceptions import (
    CircuitOpenError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadError,
)
from repro.timing import PhaseTimings

if TYPE_CHECKING:  # avoid runtime cycles with the executor/query layers
    from repro.engine.executor import UDFExecutionEngine
    from repro.engine.plan import ExecutionPlan
    from repro.engine.query import Query
    from repro.udf.base import UDF

#: Default number of row-evaluation workers shared by all in-flight queries.
DEFAULT_WORKER_BUDGET = 4
#: Default admission limit: queries in flight before submit() rejects.
DEFAULT_QUEUE_LIMIT = 16
#: How long close() waits for in-flight queries before force-finishing them.
DEFAULT_CLOSE_TIMEOUT = 30.0
#: Consecutive same-UDF query failures before the circuit breaker opens.
DEFAULT_BREAKER_THRESHOLD = 5
#: Seconds an open breaker fast-fails before admitting a half-open probe.
DEFAULT_BREAKER_COOLDOWN = 30.0

#: Sentinel marking the end of a handle's event stream / an exhausted iterator.
_DONE = object()


@dataclass
class _BreakerState:
    """Per-UDF-name circuit-breaker bookkeeping (guarded by the service lock).

    ``failures`` counts *consecutive* failed queries naming the UDF (any
    success resets it).  ``opened_at`` is the monotonic instant the breaker
    tripped (``None`` while closed); ``probing`` marks that the single
    half-open probe query has been admitted and its outcome is pending.
    """

    failures: int = 0
    opened_at: Optional[float] = None
    probing: bool = False


@dataclass(frozen=True)
class QueryEvent:
    """One anytime-result event: a tuple's verdict the moment it settled.

    Streamed by :meth:`QueryHandle.stream` while the query runs — the same
    ``(tuple_id, verdict, bound, version)`` quadruple that
    :class:`~repro.engine.result.TupleVerdict` records in the final
    result, with ``version`` a per-query monotone sequence number (the
    order the service observed the rows).
    """

    tuple_id: int
    verdict: str
    bound: float
    version: int

    def as_verdict(self) -> TupleVerdict:
        """The equivalent :class:`~repro.engine.result.TupleVerdict`."""
        return TupleVerdict(self.tuple_id, self.verdict, self.bound, self.version)


def _next_or_done(iterator: Iterator[Any]) -> Any:
    """Pull one item on a pool thread; the sentinel marks exhaustion."""
    try:
        return next(iterator)
    except StopIteration:
        return _DONE


class QueryHandle:
    """Client-side handle to one in-flight (or finished) served query.

    Returned by :meth:`QueryService.submit`; all methods are safe to call
    from any thread.  Consume anytime events with :meth:`stream`, block
    for the final :class:`~repro.engine.result.QueryResult` with
    :meth:`result`, or abort with :meth:`cancel`.
    """

    def __init__(self, name: str, service: "QueryService") -> None:
        """Create the handle (``QueryService.submit`` does this)."""
        self.name = name
        self._service = service
        self._events: "queue.Queue[Any]" = queue.Queue()
        self._done = threading.Event()
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None
        self._future: Optional["ConcurrentFuture[None]"] = None

    # -- service-side plumbing ----------------------------------------------------
    def _push(self, event: Any) -> None:
        """Enqueue one event (or the terminal sentinel) for stream()."""
        self._events.put(event)

    def _finish(
        self,
        result: Optional[QueryResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Record the outcome, release result() waiters, close the stream.

        The result/error is stored *before* the done event is set and the
        stream sentinel is pushed, so a waiter woken by either signal
        always observes the final outcome.  Idempotent: only the first
        call wins (the close() safety net may race normal completion).
        """
        if self._done.is_set():
            return
        self._result = result
        self._error = error
        self._done.set()
        self._events.put(_DONE)

    # -- client API ---------------------------------------------------------------
    def stream(self) -> Iterator[QueryEvent]:
        """Yield anytime :class:`QueryEvent` records until the query ends.

        Blocks between events; the generator ends when the query
        completes, fails, times out or is cancelled (errors are *not*
        raised here — call :meth:`result` for the outcome).
        """
        while True:
            event = self._events.get()
            if event is _DONE:
                # Keep the stream re-drainable for late/second consumers.
                self._events.put(_DONE)
                return
            yield event

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block for the final result (bit-identical to the serial run).

        Raises the query's stored error if it failed:
        :class:`~repro.exceptions.QueryCancelledError` after
        :meth:`cancel`, :class:`~repro.exceptions.QueryTimeoutError` after
        a server-side per-query timeout, or whatever the UDF raised.  A
        ``timeout`` here is a *client-side* wait bound: expiring raises
        :class:`~repro.exceptions.QueryTimeoutError` without affecting
        the still-running query.
        """
        if not self._done.wait(timeout):
            raise QueryTimeoutError(
                f"query {self.name!r} did not finish within the {timeout}s "
                "result() wait (the query itself is still running)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Request cancellation; returns whether a cancel was delivered.

        The query's coroutine is cancelled at its next row-pull boundary;
        a chunk already evaluating on a worker thread drains there (its
        transport closes on the way out, per the transport session
        contract).  After cancellation :meth:`result` raises
        :class:`~repro.exceptions.QueryCancelledError`.  Returns ``False``
        when the query already finished.
        """
        return self._service._cancel(self)

    def done(self) -> bool:
        """Whether the query has finished (any outcome)."""
        return self._done.is_set()

    def cancelled(self) -> bool:
        """Whether the query ended by cancellation."""
        return self._done.is_set() and isinstance(self._error, QueryCancelledError)

    def __repr__(self) -> str:
        state = "done" if self._done.is_set() else "running"
        return f"QueryHandle({self.name!r}, {state})"


class QueryService:
    """Long-lived concurrent query executor with a shared worker budget.

    One service hosts many concurrent queries: a private asyncio loop on
    a dedicated thread (named ``repro-query-service``) schedules one
    coroutine per query, and all row evaluation funnels through one
    shared :class:`~concurrent.futures.ThreadPoolExecutor` of
    ``worker_budget`` threads (prefix ``repro-serve``) — the hard
    concurrency bound — with a FIFO semaphore in front for fair,
    round-robin row scheduling across queries.

    ``queue_limit`` bounds admitted-but-unfinished queries;
    :meth:`submit` beyond it raises
    :class:`~repro.exceptions.ServiceOverloadError` (backpressure is the
    caller's problem by design — retry, shed, or widen the limit).

    Use as a context manager, or call :meth:`close` — which cancels
    stragglers, drains the pool, and joins the loop thread so no threads
    or event loops outlive the service.
    """

    def __init__(
        self,
        worker_budget: int = DEFAULT_WORKER_BUDGET,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        share_models: bool = False,
        breaker_threshold: Optional[int] = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
    ) -> None:
        """Start the service loop thread and worker pool immediately.

        ``breaker_threshold`` consecutive failed queries naming the same
        UDF trip that UDF's circuit breaker: further submissions fast-fail
        with :class:`~repro.exceptions.CircuitOpenError` (no engine work,
        no queue slot) until ``breaker_cooldown`` seconds pass, after
        which exactly one *half-open* probe query is admitted — its
        success closes the breaker, its failure re-opens the cooldown.
        ``breaker_threshold=None`` disables the breaker entirely.
        """
        if worker_budget < 1:
            raise ServiceError(f"worker_budget must be >= 1, got {worker_budget}")
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {queue_limit}")
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ServiceError(
                f"breaker_threshold must be >= 1 or None, got {breaker_threshold}"
            )
        if breaker_cooldown <= 0.0:
            raise ServiceError(
                f"breaker_cooldown must be positive, got {breaker_cooldown}"
            )
        self.worker_budget = worker_budget
        self.queue_limit = queue_limit
        self.share_models = share_models
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = float(breaker_cooldown)
        #: Per-UDF-name breaker states (guarded by ``_lock``).
        self._breakers: Dict[str, _BreakerState] = {}
        self._lock = threading.Lock()
        self._active: Dict[QueryHandle, "ConcurrentFuture[None]"] = {}
        self._closed = False
        self._counter = itertools.count()
        #: Live shared-model stores keyed by region then UDF name; every
        #: admitted engine binds to them under ``share_models``, so any
        #: number of concurrent same-region queries learn from — and
        #: contribute to — one model (guarded by ``_lock``).
        self._model_stores: Dict[str, Dict[str, SharedEmulatorStore]] = {}
        #: Validated plans deduped by field tuple (skipped for unhashable
        #: fields such as transport instances).
        self._plan_cache: Dict[Tuple[Any, ...], "ExecutionPlan"] = {}
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "timed_out": 0,
            "rejected": 0,
            "fast_failed": 0,
        }
        self._pool = ThreadPoolExecutor(
            max_workers=worker_budget, thread_name_prefix="repro-serve"
        )
        self._loop = asyncio.new_event_loop()
        self._slots: Optional[asyncio.Semaphore] = None
        ready = threading.Event()

        def _serve() -> None:
            asyncio.set_event_loop(self._loop)
            # The semaphore must be created on the loop it will wait on.
            self._slots = asyncio.Semaphore(worker_budget)
            ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_serve, name="repro-query-service", daemon=False
        )
        self._thread.start()
        ready.wait()

    # -- submission ---------------------------------------------------------------
    def submit(
        self,
        query: "Query",
        engine: "UDFExecutionEngine",
        plan: "Optional[ExecutionPlan | str]" = None,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
        region: str = "default",
    ) -> QueryHandle:
        """Admit one query onto the shared budget; returns immediately.

        ``engine`` should be *fresh and private to this query* — the
        service installs ``plan`` as the engine's default plan (the seam
        every UDF operator falls back to when the query builder carried
        no explicit configuration) and, under ``share_models``, binds the
        engine to the ``region``'s live shared emulator stores.  ``timeout`` bounds the
        query's server-side wall-clock; expiry cancels it exactly like
        :meth:`QueryHandle.cancel` and stores a
        :class:`~repro.exceptions.QueryTimeoutError`.

        Raises
        ------
        ServiceError
            When the service is closed.
        ServiceOverloadError
            When ``queue_limit`` queries are already in flight.
        CircuitOpenError
            When a UDF named by the query has its circuit breaker open
            (still cooling down, or its half-open probe is already out).
        """
        handle_name = name if name is not None else f"query-{next(self._counter)}"
        handle = QueryHandle(handle_name, self)
        udf_names = self._query_udf_names(query, engine)
        with self._lock:
            if self._closed:
                raise ServiceError("cannot submit to a closed QueryService")
            if len(self._active) >= self.queue_limit:
                self.stats["rejected"] += 1
                raise ServiceOverloadError(
                    f"service at queue_limit={self.queue_limit} in-flight "
                    f"queries; rejecting {handle_name!r} (retry or shed load)"
                )
            self._breaker_admit(handle_name, udf_names)
            self.stats["submitted"] += 1
            if plan is not None:
                plan = self._cached_plan(plan)
            engine.plan = plan if plan is not None else engine.plan
            if self.share_models:
                self._bind_stores(engine, region)
            future = asyncio.run_coroutine_threadsafe(
                self._run_query(handle, query, engine, timeout, udf_names),
                self._loop,
            )
            handle._future = future
            self._active[handle] = future
        return handle

    def _query_udf_names(
        self, query: "Query", engine: "UDFExecutionEngine"
    ) -> Tuple[str, ...]:
        """The UDF names the query would evaluate (breaker granularity).

        Built from the *planned* (not executed) operator tree; planning is
        pure tree construction, so the peek costs no engine work.  A query
        whose planning itself fails reports no names — the failure will
        surface identically when the query runs.  Names are canonicalised
        to the catalog spelling (:func:`~repro.udf.catalog
        .canonical_udf_name`), so breaker state keyed here lines up with
        catalog entries and profile names regardless of how the UDF's
        ``name`` attribute is cased.
        """
        from repro.udf.catalog import canonical_udf_name

        try:
            operator = query.plan(engine)
        except Exception:  # malformed query: let _execute raise the real error
            return ()
        names: List[str] = []
        for node in operator._tree_nodes():
            udf = getattr(node, "udf", None)
            udf_name = getattr(udf, "name", None)
            if udf_name is None:
                continue
            key = canonical_udf_name(udf_name)
            if key not in names:
                names.append(key)
        return tuple(names)

    def _breaker_admit(self, handle_name: str, udf_names: Tuple[str, ...]) -> None:
        """Fast-fail against open breakers; mark half-open probes (caller locks).

        A breaker still inside its cooldown (or whose single half-open
        probe is already in flight) raises
        :class:`~repro.exceptions.CircuitOpenError` before the query
        consumes a queue slot or any engine work.  Once every open breaker
        the query touches has cooled down, this submission is admitted as
        their half-open probe.
        """
        if self.breaker_threshold is None:
            return
        now = time.monotonic()
        for udf_name in udf_names:
            state = self._breakers.get(udf_name)
            if state is None or state.opened_at is None:
                continue
            elapsed = now - state.opened_at
            if state.probing:
                self.stats["fast_failed"] += 1
                raise CircuitOpenError(
                    f"circuit breaker for UDF {udf_name!r} is half-open with a "
                    f"probe query already in flight; rejecting {handle_name!r} "
                    "until the probe's outcome settles the breaker"
                )
            if elapsed < self.breaker_cooldown:
                self.stats["fast_failed"] += 1
                raise CircuitOpenError(
                    f"circuit breaker for UDF {udf_name!r} is open after "
                    f"{state.failures} consecutive query failures; "
                    f"fast-failing {handle_name!r} for another "
                    f"{self.breaker_cooldown - elapsed:.1f}s of the "
                    f"{self.breaker_cooldown:g}s cooldown, then one half-open "
                    "probe query is admitted"
                )
        for udf_name in udf_names:
            state = self._breakers.get(udf_name)
            if state is not None and state.opened_at is not None:
                state.probing = True

    def _breaker_record(self, udf_names: Tuple[str, ...], success: bool) -> None:
        """Fold one query outcome into the breakers of the UDFs it named.

        Success closes (and fully resets) each breaker; failure extends
        the consecutive-failure streak, trips the breaker at
        ``breaker_threshold``, and re-opens a breaker whose half-open
        probe just failed.  Cancellations and timeouts are *not* recorded
        — they say nothing about the UDF's health.
        """
        if self.breaker_threshold is None or not udf_names:
            return
        with self._lock:
            for udf_name in udf_names:
                state = self._breakers.setdefault(udf_name, _BreakerState())
                if success:
                    state.failures = 0
                    state.opened_at = None
                    state.probing = False
                else:
                    state.failures += 1
                    if state.probing or state.failures >= self.breaker_threshold:
                        state.opened_at = time.monotonic()
                        state.probing = False

    def _cached_plan(self, plan: "ExecutionPlan | str") -> "ExecutionPlan | str":
        """Dedupe equal validated plans so repeat submissions share one.

        The ``"auto"`` spelling passes through uncached: it resolves to a
        *different* plan per UDF profile and input size, so there is no
        one plan object to share.
        """
        if isinstance(plan, str):
            return plan
        try:
            key = tuple(getattr(plan, f.name) for f in fields(plan))
            return self._plan_cache.setdefault(key, plan)
        except TypeError:  # unhashable field (e.g. a transport instance)
            return plan

    # -- the per-query coroutine --------------------------------------------------
    async def _run_query(
        self,
        handle: QueryHandle,
        query: "Query",
        engine: "UDFExecutionEngine",
        timeout: Optional[float],
        udf_names: Tuple[str, ...] = (),
    ) -> None:
        """Run one query end to end and record its outcome on the handle."""
        result: Optional[QueryResult] = None
        error: Optional[BaseException] = None
        try:
            result = await asyncio.wait_for(
                self._execute(handle, query, engine), timeout
            )
        except asyncio.CancelledError:
            error = QueryCancelledError(f"query {handle.name!r} was cancelled")
            self._bump("cancelled")
        except (asyncio.TimeoutError, TimeoutError):
            error = QueryTimeoutError(
                f"query {handle.name!r} exceeded its {timeout}s timeout"
            )
            self._bump("timed_out")
        except BaseException as exc:  # noqa: BLE001 — stored, re-raised by result()
            error = exc
            self._bump("failed")
            self._breaker_record(udf_names, success=False)
        else:
            self._bump("completed")
            self._breaker_record(udf_names, success=True)
        finally:
            with self._lock:
                self._active.pop(handle, None)
            handle._finish(result=result, error=error)

    async def _execute(
        self, handle: QueryHandle, query: "Query", engine: "UDFExecutionEngine"
    ) -> QueryResult:
        """Pull the query's operator tree row by row through the pool.

        Rows are pulled strictly sequentially for this query (bit-identity
        with the serial run); the FIFO ``_slots`` semaphore interleaves
        pulls fairly across in-flight queries, and the pool bounds actual
        evaluation concurrency at ``worker_budget`` even when a cancelled
        query's last chunk is still draining on a worker thread.
        """
        loop = asyncio.get_running_loop()
        operator = query.plan(engine)
        iterator = iter(operator)
        relation = Relation(name=handle.name, schema=operator.schema())
        verdicts: List[TupleVerdict] = []
        epsilon = engine.requirement.epsilon
        timings = PhaseTimings()
        slots = self._slots
        assert slots is not None
        with timings.measure("execute"):
            while True:
                async with slots:
                    row = await loop.run_in_executor(
                        self._pool, _next_or_done, iterator
                    )
                if row is _DONE:
                    break
                verdict = classify_row(
                    row, epsilon, tuple_id=len(verdicts), version=len(verdicts)
                )
                relation.insert(row)
                verdicts.append(verdict)
                handle._push(
                    QueryEvent(
                        verdict.tuple_id, verdict.verdict, verdict.bound,
                        verdict.version,
                    )
                )
        self._merge_model_timings(engine, timings)
        return QueryResult(
            relation,
            plan=operator._tree_plan(),
            timings=timings,
            verdicts=verdicts,
        )

    @staticmethod
    def _merge_model_timings(engine: "UDFExecutionEngine", timings: PhaseTimings) -> None:
        """Fold per-processor shared-model sync time into the result timings.

        Every served result reports the ``model_refresh`` / ``model_append``
        phases (zero when ``share_models`` is off or nothing synced), so
        shared-model overhead is observable in every bench row.
        """
        from repro.core.hybrid import HybridExecutor

        timings.ensure("model_refresh", "model_append")
        for processor in engine._processors.values():
            target = (
                processor._olgapro
                if isinstance(processor, HybridExecutor)
                else processor
            )
            sync = getattr(target, "model_sync", None)
            if sync is not None:
                timings.merge(sync.timings)

    def _bump(self, stat: str) -> None:
        """Thread-safely increment one stats counter."""
        with self._lock:
            self.stats[stat] += 1

    # -- cross-query shared models (share_models=True) ----------------------------
    def _store_for(self, region: str, udf_name: str) -> SharedEmulatorStore:
        """The region's live store for ``udf_name`` (created on first use)."""
        with self._lock:
            pool = self._model_stores.setdefault(region, {})
            store = pool.get(udf_name)
            if store is None:
                store = pool[udf_name] = SharedEmulatorStore()
            return store

    def _bind_stores(self, engine: "UDFExecutionEngine", region: str) -> None:
        """Point the engine's shared-store seam at the region's registry.

        Unlike the pre-store loan cache, nothing is moved or locked out:
        every processor the engine creates binds an
        :class:`~repro.core.shared_model.EmulatorSync` to the same store,
        so any number of concurrent same-region queries publish to — and
        seed from — one live model.  Called from :meth:`submit`; the
        resolver itself runs later, on worker threads, and takes the
        service lock only for the registry lookup.
        """

        def resolver(udf: "UDF") -> SharedEmulatorStore:
            return self._store_for(region, udf.name)

        engine._shared_store_resolver = resolver

    # -- cancellation / shutdown --------------------------------------------------
    def _cancel(self, handle: QueryHandle) -> bool:
        """Cancel one in-flight query (``QueryHandle.cancel`` calls this)."""
        with self._lock:
            future = self._active.get(handle)
        if future is None:
            return False
        # run_coroutine_threadsafe chains this into the loop-side task
        # cancel; the coroutine then unwinds at its next await point.
        return future.cancel()

    def close(
        self,
        cancel_pending: bool = True,
        timeout: float = DEFAULT_CLOSE_TIMEOUT,
        drain: bool = False,
    ) -> None:
        """Shut the service down, releasing every thread and the loop.

        ``drain=True`` is the graceful path: new submissions are rejected
        immediately (the closed flag is set under the lock before any
        waiting), but every in-flight query is left running and awaited —
        up to ``timeout`` seconds total across all of them — so clients
        holding a :class:`QueryHandle` still receive their real results.
        Otherwise ``cancel_pending`` (the default) cancels all in-flight
        queries; ``cancel_pending=False`` awaits them like ``drain`` does.
        Then the loop is stopped and joined, the worker pool drained, and
        — as a safety net — any handle still unfinished is force-finished
        with :class:`~repro.exceptions.QueryCancelledError` so no
        :meth:`QueryHandle.result` waiter blocks forever.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._active.items())
        if cancel_pending and not drain:
            for _handle, future in pending:
                future.cancel()
        # One shared wall-clock deadline across every pending handle — a
        # slow query cannot starve the wait budget of the ones after it,
        # and an already-finished handle consumes none of it.
        deadline = time.monotonic() + max(0.0, timeout)
        for handle, _future in pending:
            handle._done.wait(max(0.0, deadline - time.monotonic()))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop.close()
        self._pool.shutdown(wait=True)
        for handle, _future in pending:
            handle._finish(
                error=QueryCancelledError(
                    f"query {handle.name!r} cancelled by service shutdown"
                )
            )

    def active_count(self) -> int:
        """Number of queries currently admitted and unfinished."""
        with self._lock:
            return len(self._active)

    def __enter__(self) -> "QueryService":
        """Context-manager entry: the already-running service."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: :meth:`close` with defaults."""
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"active={self.active_count()}"
        return (
            f"QueryService(worker_budget={self.worker_budget}, "
            f"queue_limit={self.queue_limit}, {state})"
        )
