"""Synthetic SDSS-like Galaxy relation (substitute for the paper's real data).

Section 6.4 of the paper extracts uncertain attributes from the Sloan
Digital Sky Survey: each galaxy's redshift and position are modelled as
Gaussian distributions whose means come from repeated noisy observations.
The real catalogue is not redistributable here, so this module generates a
synthetic relation with the same structure and realistic value ranges:

* ``objID`` — certain integer identifier,
* ``redshift`` — uncertain, Gaussian around a value drawn from a skewed
  distribution in ``[0.01, 1.5]`` with measurement error growing with
  distance (faint objects are noisier),
* ``ra`` / ``dec`` offsets — uncertain Gaussian sky-position offsets
  (degrees) used by the AngDist / Distance UDFs,
* ``mag_r`` — certain r-band magnitude, used only as a descriptive column.

The algorithms only consume the per-tuple distributions, so this synthetic
relation exercises exactly the same code paths as the real catalogue.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.continuous import Gaussian, TruncatedGaussian
from repro.engine.schema import Attribute, AttributeKind, Schema
from repro.engine.tuples import Relation, UncertainTuple
from repro.rng import RandomState, as_generator
from repro.udf.astro import ANGLE_OFFSET_RANGE, REDSHIFT_RANGE

#: Relative redshift measurement error for bright (nearby) objects.
_BASE_REDSHIFT_ERROR = 0.01
#: Additional relative error accumulated by the faintest objects.
_EXTRA_REDSHIFT_ERROR = 0.04
#: Positional error in degrees (arcsecond-scale errors would make the UDF
#: outputs effectively certain; the paper's experiments use uncertainties
#: that are meaningful relative to the function's lengthscale).
_POSITION_ERROR_DEG = 0.05


def galaxy_schema() -> Schema:
    """Schema of the synthetic Galaxy relation."""
    return Schema.of(
        [
            Attribute("objID", AttributeKind.CERTAIN, description="object identifier"),
            Attribute(
                "redshift",
                AttributeKind.UNCERTAIN,
                description="spectroscopic redshift with Gaussian error",
            ),
            Attribute(
                "ra_offset",
                AttributeKind.UNCERTAIN,
                description="right-ascension offset from the field centre (deg)",
            ),
            Attribute(
                "dec_offset",
                AttributeKind.UNCERTAIN,
                description="declination offset from the field centre (deg)",
            ),
            Attribute("mag_r", AttributeKind.CERTAIN, description="r-band magnitude"),
        ]
    )


def generate_galaxy_relation(
    n_galaxies: int, random_state: RandomState = None, name: str = "Galaxy"
) -> Relation:
    """Generate a synthetic Galaxy relation with ``n_galaxies`` uncertain tuples."""
    if n_galaxies <= 0:
        raise ValueError("n_galaxies must be positive")
    rng = as_generator(random_state)
    relation = Relation(name=name, schema=galaxy_schema())
    z_lo, z_hi = REDSHIFT_RANGE
    a_lo, a_hi = ANGLE_OFFSET_RANGE
    for obj_id in range(n_galaxies):
        # Redshift distribution of a magnitude-limited survey is skewed
        # towards low z; a Beta draw stretched over the range captures that.
        z_mean = z_lo + (z_hi - z_lo) * float(rng.beta(2.0, 3.5))
        relative_error = _BASE_REDSHIFT_ERROR + _EXTRA_REDSHIFT_ERROR * (z_mean - z_lo) / (z_hi - z_lo)
        z_sigma = max(relative_error * z_mean, 1e-4)
        redshift = TruncatedGaussian(mu=z_mean, sigma=z_sigma, low=z_lo, high=z_hi * 1.2)

        ra_mean = float(rng.uniform(a_lo, a_hi))
        dec_mean = float(rng.uniform(a_lo, a_hi))
        ra = Gaussian(mu=ra_mean, sigma=_POSITION_ERROR_DEG)
        dec = Gaussian(mu=dec_mean, sigma=_POSITION_ERROR_DEG)

        magnitude = float(np.clip(rng.normal(19.0 + 2.5 * z_mean, 0.8), 14.0, 24.0))
        relation.insert(
            UncertainTuple(
                values={
                    "objID": obj_id,
                    "redshift": redshift,
                    "ra_offset": ra,
                    "dec_offset": dec,
                    "mag_r": magnitude,
                }
            )
        )
    return relation
