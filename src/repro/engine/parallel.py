"""Process-pool sharded execution of UDF queries over uncertain relations.

The batched pipeline (:mod:`repro.engine.batch`) made the engine
set-at-a-time, but every chunk still runs on one core.  Chunks are
independent given a model snapshot — the succinct per-tuple state argument
of Antova et al. (arXiv:0707.1644) applied to this engine: once a tuple's
state is a compact input distribution plus a shared emulator, the relation
shards trivially.  :class:`ParallelExecutor` therefore

1. splits the input stream into fixed-size *shards* (``shard_size`` tuples,
   default ``batch_size`` — deliberately independent of the worker count so
   shard outputs do not depend on pool size),
2. pickles the execution engine once — per-UDF processors, GP emulator,
   kernel hyperparameters and R-tree included — as the model snapshot every
   worker starts from,
3. runs one :class:`~repro.engine.batch.BatchExecutor` per shard inside a
   :class:`concurrent.futures.ProcessPoolExecutor`, each shard drawing from
   its own :func:`~repro.rng.spawn_keyed` random stream, and
4. merges shard outputs (always in shard order) and the training points the
   workers added (according to the *merge policy*) back into the parent.

Merge policies
--------------
``"discard"``
    Worker-added training points are thrown away.  With ``workers >= 2``
    the parent process never computes, so its model is byte-for-byte
    untouched; with ``workers = 1`` the in-process run is rolled back via a
    model snapshot (training data, factorization, kernel hyperparameters,
    index, hyperparameter-trained flag), while pure *accounting* state —
    UDF call counters, GP operation counts, ``tuples_processed`` — keeps
    the work it genuinely performed.  Shard outputs depend only on
    ``(seed, shard_size, batch_size)`` — invariant to the worker count.
``"union"`` (default)
    Every worker's new ``(x, f(x))`` observations are absorbed into the
    parent emulator through the blocked incremental update (exact duplicates
    are dropped first).  The UDF values were already paid for in the
    workers, so the parent model warms up without further UDF calls.
``"refit-threshold"``
    ``"union"``, plus a full hyperparameter retrain when at least
    ``refit_threshold`` merged points arrived — the cross-shard analogue of
    the §5.3 retraining policy.
``"shared"``
    The **live shared model**: instead of every worker relearning the
    emulator from scratch and reconciling only after the run, a
    :class:`~repro.core.shared_model.SharedEmulatorStore` is served from a
    model-server endpoint on the parent
    (:func:`~repro.core.shared_model.serve_shared_store`), seeded with the
    parent's current training matrix.  Each worker binds an
    :class:`~repro.core.shared_model.EmulatorSync` to its private emulator:
    a cold worker seeds itself from the store (the *first* worker pays for
    the one initial design, the rest absorb it for zero UDF calls), and
    every tuple boundary publishes the rows the worker just paid for while
    absorbing what other shards learned meanwhile.  After the run the
    parent absorbs the store in commit order — so the parent ends warm,
    like ``"union"``, but total UDF calls stay close to the serial run
    instead of scaling with the worker count.  At ``workers=1`` no store
    exists and the policy is the serial fast path keeping its points
    (bit-identical to the serial batched run); at ``workers >= 2`` shard
    outputs depend on cross-shard absorption timing and are *not*
    worker-count-invariant (use ``"discard"`` when that invariance matters
    more than the UDF-call budget).

Determinism contract
--------------------
``workers=1`` bypasses the pool and the shard streams entirely and runs the
serial batched path on the parent engine — numerically identical, same
random stream, same model evolution.  ``workers >= 2`` uses the keyed shard
streams; see :mod:`repro.rng` for the full contract.  Worker failures —
a UDF raising inside the black box, an unpicklable engine, or a crashed
pool process — surface as :class:`~repro.exceptions.QueryError`.

Hiding UDF latency inside a shard
---------------------------------
Sharding overlaps *whole shards* across processes; with a black box whose
per-call latency dominates, each worker still sleeps through its own
refinement loop.  ``async_inflight > 1`` runs every shard through an
:class:`~repro.engine.async_exec.AsyncRefinementExecutor`, overlapping up
to that many in-flight UDF calls on a thread pool *inside* the worker, and
``oversubscribe`` raises the default pool size above the core count so
latency-bound workers do not leave CPUs idle.  Both knobs preserve the
determinism contract above (the async pipeline is completion-order
invariant), but shard outputs then follow the async refinement trajectory,
which differs numerically from the serial batched one at
``async_inflight > 1``.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Literal, Optional, Sequence

import numpy as np

from repro.core.filtering import SelectionPredicate
from repro.core.hybrid import HybridExecutor
from repro.distributions.base import Distribution
from repro.engine.batch import DEFAULT_BATCH_SIZE, STORAGES, BatchExecutor, iter_batches
from repro.engine.executor import ComputedOutput, UDFExecutionEngine
from repro.exceptions import QueryError, ShardFailureError
from repro.rng import derive_seed, spawn_keyed
from repro.timing import PhaseTimings
from repro.udf.base import UDF
from repro.udf.retry import RetryPolicy

MergePolicy = Literal["discard", "union", "refit-threshold", "shared"]

MERGE_POLICIES: tuple[str, ...] = ("discard", "union", "refit-threshold", "shared")

#: Default number of merged training points that triggers a hyperparameter
#: retrain under the ``"refit-threshold"`` policy.
DEFAULT_REFIT_THRESHOLD = 16


def default_worker_count(oversubscribe: float = 1.0) -> int:
    """The shard count used when ``workers`` is left unset.

    The core count scaled by ``oversubscribe`` (floored at one worker) —
    shared by :class:`ParallelExecutor` and the engine's
    ``compute_parallel`` deprecation shim, which needs the same number to
    build the equivalent :class:`~repro.engine.plan.ExecutionPlan` (a plan
    has no "default worker count" spelling of its own: ``workers=None``
    means *unsharded* there).
    """
    return max(1, round((os.cpu_count() or 1) * oversubscribe))


@dataclass
class ShardResult:
    """What one pool worker sends back for its shard (picklable)."""

    shard_index: int
    outputs: list[ComputedOutput]
    #: Training inputs/targets the worker added beyond the snapshot
    #: (``None`` when the strategy has no model or nothing was added).
    new_X: Optional[np.ndarray]
    new_y: Optional[np.ndarray]
    #: The worker's per-phase wall-clock, merged into the parent's report.
    timings: dict[str, float]
    #: UDF cost deltas, credited back to the parent UDF's accounting.
    udf_calls: int
    udf_real_time: float


def _emulator_of(engine: UDFExecutionEngine, udf: UDF):
    """The GP emulator behind ``udf``'s processor, or ``None`` (mc / cold)."""
    processor = engine._processors.get(udf.name)
    if processor is None:
        return None
    if isinstance(processor, HybridExecutor):
        return processor._olgapro.emulator
    return processor.emulator


def _shard_executor(
    engine: UDFExecutionEngine,
    batch_size: int,
    async_inflight: Optional[int],
    pipeline_lookahead: Optional[int] = None,
    transport=None,
    storage: str = "tuple",
):
    """The per-shard executor: batched, async-overlapped, or pipelined.

    ``transport`` (a registry name or an
    :class:`~repro.engine.transport.EvaluationTransport`) selects how each
    shard's refinement windows reach the black box; ``None`` keeps the
    sub-executor's default (a bounded thread pool).
    """
    if pipeline_lookahead is not None and pipeline_lookahead > 1:
        from repro.engine.pipeline import PipelinedExecutor

        return PipelinedExecutor(
            engine,
            lookahead=pipeline_lookahead,
            inflight=async_inflight,
            batch_size=batch_size,
            transport=transport,
            storage=storage,
        )
    if async_inflight is not None and async_inflight > 1:
        from repro.engine.async_exec import AsyncRefinementExecutor

        return AsyncRefinementExecutor(
            engine, inflight=async_inflight, batch_size=batch_size,
            transport=transport, storage=storage,
        )
    return BatchExecutor(engine, batch_size, storage=storage)


def _run_shard(
    payload: bytes,
    shard_index: int,
    distributions: Sequence[Distribution],
    batch_size: int,
    base_seed: int,
    predicate: Optional[SelectionPredicate],
    async_inflight: Optional[int] = None,
    pipeline_lookahead: Optional[int] = None,
    transport=None,
    storage: str = "tuple",
    shared_store=None,
) -> ShardResult:
    """Pool-worker entry point: one shard through the batched pipeline.

    Unpickles a private copy of the engine snapshot, switches it onto the
    shard's keyed random stream, and runs :class:`BatchExecutor` exactly as
    the serial path would — or, when ``async_inflight > 1``, an
    :class:`~repro.engine.async_exec.AsyncRefinementExecutor`, which hides
    UDF latency *inside* the worker process by overlapping the refinement
    loop's black-box calls on a thread pool.  Runs in a separate process —
    everything touched here is a copy, and everything returned is picked up
    by the parent's merge step.

    ``shared_store`` (a :class:`~repro.core.shared_model.SharedEmulatorStore`
    proxy, ``merge="shared"`` only) binds the shard's emulator to the live
    shared model: an :class:`~repro.core.shared_model.EmulatorSync` is
    installed on the UDF's processor so the shard seeds from — and
    publishes to — the store at tuple boundaries instead of relearning
    everything other shards already paid for.
    """
    engine, udf = pickle.loads(payload)
    engine.reseed(spawn_keyed(base_seed, shard_index))
    n_before = 0
    emulator = _emulator_of(engine, udf)
    if emulator is not None:
        n_before = emulator.n_training
    calls_before = udf.call_count
    real_before = udf.real_time

    executor = _shard_executor(
        engine, batch_size, async_inflight, pipeline_lookahead, transport, storage
    )
    sync = None
    if shared_store is not None and engine.strategy != "mc":
        from repro.core.shared_model import EmulatorSync

        processor = engine._processor_for(udf)
        target = processor._olgapro if isinstance(processor, HybridExecutor) else processor
        if hasattr(target, "model_sync"):
            sync = EmulatorSync(
                shared_store,
                target.emulator,
                max_training_points=int(target.max_training_points),
                timings=executor.timings,
            )
            target.model_sync = sync
    if predicate is None:
        outputs = executor.compute_batch(udf, list(distributions))
    else:
        outputs = executor.compute_batch_with_predicate(udf, list(distributions), predicate)
    if sync is not None:
        # Final exchange: whatever the last chunk learned reaches the store
        # before the worker reports back (covers sub-executors that drive
        # refinement outside process_batch's tuple loop too).
        sync.sync()

    new_X = new_y = None
    emulator = _emulator_of(engine, udf)  # may have been created during the run
    if emulator is not None and emulator.n_training > n_before:
        gp = emulator.gp
        new_X = gp.X_train[n_before:]
        new_y = gp.y_train[n_before:]
    return ShardResult(
        shard_index=shard_index,
        outputs=outputs,
        new_X=new_X,
        new_y=new_y,
        timings=dict(executor.timings.seconds),
        udf_calls=udf.call_count - calls_before,
        udf_real_time=udf.real_time - real_before,
    )


class ParallelExecutor:
    """Shards a tuple stream across a process pool of batched executors.

    Parameters
    ----------
    engine:
        The parent execution engine.  Its current per-UDF model state is the
        snapshot every worker starts from; merge policies decide what flows
        back into it.
    workers:
        Pool size; defaults to ``os.cpu_count()``.  ``workers=1`` runs the
        serial batched path in-process (see the module docstring).
    batch_size:
        Chunk size of the per-shard :class:`BatchExecutor`.
    shard_size:
        Tuples per shard; defaults to ``batch_size``.  Kept independent of
        ``workers`` so shard outputs are invariant to the pool size.
    merge:
        Merge policy for worker-added training points (module docstring).
    refit_threshold:
        Minimum merged points that trigger a retrain under
        ``"refit-threshold"``.
    seed:
        Base seed for the per-shard :func:`~repro.rng.spawn_keyed` streams.
        ``None`` derives one from the engine's stream (reproducible given
        the engine seed, but advancing it — pass an explicit seed for
        run-to-run stability of repeated calls).
    async_inflight:
        When ``> 1``, every shard runs through an
        :class:`~repro.engine.async_exec.AsyncRefinementExecutor` that
        overlaps up to this many refinement-loop UDF calls on a thread pool
        inside the worker process.  Orthogonal to sharding: processes
        overlap whole shards, threads overlap the black-box calls within
        one.  Shard outputs then follow the async (not the serial batched)
        refinement trajectory — still deterministic for a fixed
        configuration, and still worker-count-invariant under ``"discard"``.
    pipeline_lookahead:
        When ``> 1``, every shard runs through a
        :class:`~repro.engine.pipeline.PipelinedExecutor` that additionally
        overlaps the refinement tail of each tuple with the sampling, first
        inference and prefetched first UDF window of the next
        ``pipeline_lookahead - 1`` tuples *within the shard*;
        ``async_inflight`` then sets the within-tuple window of that
        scheduler.  Shard outputs follow the pipelined trajectory (bitwise
        the async trajectory at the same window) and remain deterministic
        and worker-count-invariant under ``"discard"``.
    oversubscribe:
        Scales the *default* worker count (``os.cpu_count()``) when
        ``workers`` is ``None``.  With UDF-latency-bound shards a worker
        spends most of its time sleeping in the black box, so running more
        shards than cores (e.g. ``oversubscribe=2.0``) keeps the CPUs busy.
        Ignored when ``workers`` is set explicitly.
    retry:
        A :class:`~repro.udf.retry.RetryPolicy` enabling *shard-level
        recovery*: when a worker process dies (the pool reports
        :class:`concurrent.futures.BrokenExecutor`), the dead worker's
        shard is re-executed on a fresh pool up to
        ``retry.shard_attempts`` total attempts.  Re-execution is exact —
        the shard re-derives the same :func:`~repro.rng.spawn_keyed`
        stream from ``(base_seed, shard_index)`` and starts from the same
        pickled snapshot, so a recovered run is bit-identical to one that
        never crashed.  ``None`` (default) keeps the single-attempt
        fail-fast behaviour.  Exhausted attempts (and every
        non-crash worker failure) surface as
        :class:`~repro.exceptions.ShardFailureError` whose message carries
        the shard index, tuple range, base seed and spawn key — enough to
        re-run the failing shard in isolation from the message alone.
    """

    def __init__(
        self,
        engine: UDFExecutionEngine,
        workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        shard_size: Optional[int] = None,
        merge: MergePolicy = "union",
        refit_threshold: int = DEFAULT_REFIT_THRESHOLD,
        seed: Optional[int] = None,
        async_inflight: Optional[int] = None,
        pipeline_lookahead: Optional[int] = None,
        oversubscribe: float = 1.0,
        transport=None,
        retry: Optional[RetryPolicy] = None,
        storage: str = "tuple",
    ):
        """Validate the configuration; no pool is created until a compute call.

        ``transport`` selects how each shard's refinement windows reach the
        black box (forwarded to the per-shard sub-executor; ``None`` keeps
        their default thread pool).  Transports are opened inside each
        worker process — only the *spec* crosses the pickling boundary.

        Raises
        ------
        QueryError
            On a non-positive ``workers`` / ``batch_size`` / ``shard_size``
            / ``refit_threshold`` / ``async_inflight`` /
            ``pipeline_lookahead``, an unknown ``merge`` policy or
            ``transport``, a serial transport under an overlapped schedule,
            ``oversubscribe < 1``, or a ``retry`` that is not a
            :class:`~repro.udf.retry.RetryPolicy`.
        """
        if workers is not None and workers < 1:
            raise QueryError(f"workers must be positive, got {workers}")
        if batch_size < 1:
            raise QueryError(f"batch_size must be positive, got {batch_size}")
        if shard_size is not None and shard_size < 1:
            raise QueryError(f"shard_size must be positive, got {shard_size}")
        if merge not in MERGE_POLICIES:
            raise QueryError(f"unknown merge policy {merge!r}; choose from {MERGE_POLICIES}")
        if refit_threshold < 1:
            raise QueryError(f"refit_threshold must be positive, got {refit_threshold}")
        if async_inflight is not None and async_inflight < 1:
            raise QueryError(f"async_inflight must be positive, got {async_inflight}")
        if pipeline_lookahead is not None and pipeline_lookahead < 1:
            raise QueryError(
                f"pipeline_lookahead must be positive, got {pipeline_lookahead}"
            )
        if oversubscribe < 1.0:
            raise QueryError(f"oversubscribe must be at least 1, got {oversubscribe}")
        if transport is not None:
            from repro.engine.transport import transport_name

            if transport_name(transport) == "serial" and (
                (async_inflight is not None and async_inflight > 1)
                or (pipeline_lookahead is not None and pipeline_lookahead > 1)
            ):
                raise QueryError(
                    "transport='serial' cannot carry an overlapped per-shard "
                    "schedule; use 'threads' or 'asyncio'"
                )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise QueryError(
                f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
            )
        if storage not in STORAGES:
            raise QueryError(f"unknown storage layout {storage!r}; choose from {STORAGES}")
        self.retry = retry
        #: Storage layout of every per-shard chunk pipeline ("tuple" or
        #: "columnar"); only the string crosses the pickling boundary.
        self.storage = storage
        self.columnar = storage == "columnar"
        self.transport = transport
        self.engine = engine
        self.async_inflight = int(async_inflight) if async_inflight is not None else None
        self.pipeline_lookahead = (
            int(pipeline_lookahead) if pipeline_lookahead is not None else None
        )
        self.oversubscribe = float(oversubscribe)
        if workers is not None:
            self.workers = int(workers)
        else:
            self.workers = default_worker_count(self.oversubscribe)
        self.batch_size = int(batch_size)
        self.shard_size = int(shard_size) if shard_size is not None else self.batch_size
        self.merge: MergePolicy = merge
        self.refit_threshold = int(refit_threshold)
        self.seed = seed
        #: Aggregate of per-worker phase timings (total work, not wall-clock —
        #: worker phases overlap in time).
        self.timings = PhaseTimings()
        #: Training points merged into the parent model by the last call.
        self.last_merged_points = 0
        #: Worker points that did not fit under the processor's
        #: ``max_training_points`` cap in the last merge.
        self.last_dropped_points = 0

    # -- public API ---------------------------------------------------------------
    def compute_batch(
        self, udf: UDF, input_distributions: Sequence[Distribution]
    ) -> list[ComputedOutput]:
        """Evaluate ``udf`` on every tuple, sharded across the pool."""
        return self._run(udf, list(input_distributions), predicate=None)

    def compute_batch_with_predicate(
        self,
        udf: UDF,
        input_distributions: Sequence[Distribution],
        predicate: SelectionPredicate,
    ) -> list[ComputedOutput]:
        """Predicate (online-filtering) evaluation, sharded across the pool."""
        return self._run(udf, list(input_distributions), predicate=predicate)

    # -- serial fast path ---------------------------------------------------------
    def _run_serial(
        self, udf: UDF, distributions: list[Distribution], predicate
    ) -> list[ComputedOutput]:
        """``workers=1``: the serial path on the parent engine, no pool.

        Numerically identical to :class:`BatchExecutor` under the same
        engine seed (or, when ``async_inflight > 1``, to the equivalent
        :class:`~repro.engine.async_exec.AsyncRefinementExecutor` run).
        Merge policies still apply: ``"discard"`` rolls the model back
        afterwards, ``"refit-threshold"`` may retrain.
        """
        emulator = _emulator_of(self.engine, udf)
        had_processor = udf.name in self.engine._processors
        state = emulator.snapshot() if emulator is not None else None
        n_before = emulator.n_training if emulator is not None else 0

        executor = _shard_executor(
            self.engine, self.batch_size, self.async_inflight,
            self.pipeline_lookahead, self.transport, self.storage,
        )
        if predicate is None:
            outputs = executor.compute_batch(udf, distributions)
        else:
            outputs = executor.compute_batch_with_predicate(udf, distributions, predicate)
        self.timings.merge(executor.timings)

        emulator = _emulator_of(self.engine, udf)
        added = (emulator.n_training - n_before) if emulator is not None else 0
        if self.merge == "discard" and added > 0:
            if state is not None:
                emulator.restore(state)
            elif not had_processor:
                # The run created the processor; discarding means the engine
                # goes back to having no model for this UDF at all.
                self.engine._processors.pop(udf.name, None)
            self.last_merged_points = 0
        else:
            self.last_merged_points = added
            if (
                self.merge == "refit-threshold"
                and added >= self.refit_threshold
                and emulator is not None
            ):
                emulator.retrain()
        return outputs

    # -- sharded path -------------------------------------------------------------
    def _run(
        self, udf: UDF, distributions: list[Distribution], predicate
    ) -> list[ComputedOutput]:
        if not distributions:
            # An empty relation is a legal query input: no pool is spun up,
            # no shard runs, but the executor still reports a complete
            # (zero) phase record so timing consumers never miss a phase.
            phases = ("sampling", "inference", "refinement")
            if predicate is not None:
                phases += ("filtering",)
            if self.pipeline_lookahead is not None and self.pipeline_lookahead > 1:
                # Pipelined shards report a speculation phase; the empty run
                # must expose the same phase set.
                phases += ("speculation",)
            self.timings.ensure(*phases)
            self.last_merged_points = 0
            self.last_dropped_points = 0
            return []
        if self.workers == 1:
            return self._run_serial(udf, distributions, predicate)

        base_seed = self.seed if self.seed is not None else derive_seed(self.engine._rng)
        try:
            payload = pickle.dumps((self.engine, udf))
        except Exception as exc:
            raise QueryError(
                "parallel execution requires a picklable engine and UDF "
                f"(snapshot for worker processes): {exc}"
            ) from exc

        shared_manager = None
        shared_store = None
        if self.merge == "shared" and self.engine.strategy != "mc":
            from repro.core.shared_model import serve_shared_store

            shared_manager, shared_store = serve_shared_store()
            emulator = _emulator_of(self.engine, udf)
            if emulator is not None and emulator.n_training:
                # A warm parent seeds the store, so every shard starts from
                # the full shared matrix and nobody re-pays an initial design.
                shared_store.append(emulator.gp.X_train, emulator.gp.y_train)
                shared_store.claim_initialization()
                if emulator._trained_hyperparameters:
                    shared_store.publish_hyperparameters(emulator.gp.kernel.theta)

        try:
            shards = list(iter_batches(distributions, self.shard_size))
            results_by_shard: dict[int, ShardResult] = {}
            shard_attempts = 1 if self.retry is None else int(self.retry.shard_attempts)
            pending = list(range(len(shards)))
            attempt = 0
            while pending:
                attempt += 1
                crashed = self._run_round(
                    pending, shards, payload, base_seed, predicate, results_by_shard,
                    shared_store,
                )
                if crashed and attempt >= shard_attempts:
                    raise self._shard_failure(
                        crashed[0],
                        len(distributions),
                        base_seed,
                        f"worker process died and the shard still failed after "
                        f"{attempt} attempt(s) (pool crash; raise "
                        f"retry.shard_attempts to re-execute the shard more times)",
                    )
                pending = crashed

            outputs: list[ComputedOutput] = []
            results = [results_by_shard[i] for i in range(len(shards))]  # shard order
            for result in results:
                outputs.extend(result.outputs)
                self.timings.merge(result.timings)
                udf.absorb_charges(result.udf_calls, result.udf_real_time)
            self._merge_training_points(udf, results, shared_store)
        finally:
            if shared_manager is not None:
                shared_manager.shutdown()
        return outputs

    def _run_round(
        self,
        pending: list[int],
        shards: list[list[Distribution]],
        payload: bytes,
        base_seed: int,
        predicate,
        results_by_shard: dict[int, "ShardResult"],
        shared_store=None,
    ) -> list[int]:
        """One pool round over ``pending`` shard indices.

        Completed shards land in ``results_by_shard``; the indices whose
        worker process died (a :class:`BrokenExecutor` crash — retryable,
        because re-running a shard under the same ``spawn_keyed`` stream is
        bit-identical) are returned for the caller's recovery loop.  Every
        *in-process* failure (a UDF raising inside the black box) is not
        retryable at shard granularity — the per-call retry policy already
        ran inside the worker — and raises a typed
        :class:`~repro.exceptions.ShardFailureError` immediately.  Each
        round uses a fresh pool: a crashed :class:`ProcessPoolExecutor` is
        permanently broken and cannot accept resubmissions.
        """
        n_tuples = sum(len(shard) for shard in shards)
        crashed: list[int] = []
        try:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
                futures = {
                    i: pool.submit(
                        _run_shard, payload, i, shards[i], self.batch_size, base_seed,
                        predicate, self.async_inflight, self.pipeline_lookahead,
                        self.transport, self.storage, shared_store,
                    )
                    for i in pending
                }
                try:
                    for i, future in futures.items():
                        try:
                            results_by_shard[i] = future.result()
                        except BrokenExecutor:
                            # The pool is dead: this shard (and every other
                            # still-outstanding one, which fails the same
                            # way) goes back to the recovery loop.
                            crashed.append(i)
                        except QueryError:
                            raise
                        except Exception as exc:  # ReproError from the black box included
                            raise self._shard_failure(
                                i, n_tuples, base_seed, exc
                            ) from exc
                except QueryError:
                    # Fail fast: drop every shard still queued so the typed
                    # error is not delayed behind the remaining real-cost UDF
                    # work (the with-block's shutdown waits for running ones).
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        except QueryError:
            raise
        except BrokenExecutor:
            # The crash surfaced at pool shutdown rather than through a
            # future: everything not yet collected goes back to the loop.
            crashed = [i for i in pending if i not in results_by_shard]
        return crashed

    def _shard_failure(
        self, shard_index: int, n_tuples: int, base_seed: int, cause
    ) -> ShardFailureError:
        """A typed shard failure whose message alone reproduces the shard.

        ``parallel shard <i> failed`` plus the half-open maths to rebuild the
        failing slice: the tuple range ``shard_index * shard_size ..``, the
        base seed, and the :func:`~repro.rng.spawn_keyed` key (the shard
        index itself) that re-derives the worker's exact random stream.
        """
        lo = shard_index * self.shard_size
        hi = min((shard_index + 1) * self.shard_size, n_tuples) - 1
        return ShardFailureError(
            f"parallel shard {shard_index} failed "
            f"(tuples {lo}..{hi} of {n_tuples}, base_seed={base_seed}, "
            f"spawn_key={shard_index}): {cause}"
        )

    # -- merge step ---------------------------------------------------------------
    def _merge_training_points(
        self, udf: UDF, results: list[ShardResult], shared_store=None
    ) -> None:
        """Fold worker-added training points into the parent model.

        Exact-duplicate rows are dropped, and the absorption respects the
        processor's ``max_training_points`` cap (shard order decides which
        points fit) — without the cap a long relation would bloat the parent
        model past the size OLGAPRO's refinement loop is allowed to use,
        permanently short-circuiting refinement for later tuples.  Points
        that did not fit are counted in :attr:`last_dropped_points`.

        Under ``merge="shared"`` the store — not the shard results — is the
        source of truth: the parent absorbs its rows in commit order (the
        tuple-ordered sequence every worker's fenced appends produced), so
        the parent's final matrix is independent of which shard reported
        back first.
        """
        self.last_merged_points = 0
        self.last_dropped_points = 0
        if self.merge == "discard":
            return
        if self.merge == "shared":
            self._refresh_parent_from_store(udf, shared_store)
            return
        stacked_X: list[np.ndarray] = []
        stacked_y: list[np.ndarray] = []
        for result in results:
            if result.new_X is not None and result.new_X.shape[0]:
                stacked_X.append(result.new_X)
                stacked_y.append(result.new_y)
        if not stacked_X:
            return
        emulator = _emulator_of(self.engine, udf)
        if emulator is None:
            if self.engine.strategy == "mc":
                return
            # Cold parent: create the processor so the merged points warm it.
            self.engine._processor_for(udf)
            emulator = _emulator_of(self.engine, udf)
        X = np.vstack(stacked_X)
        y = np.concatenate(stacked_y)
        # Shards that refined overlapping input regions can return the exact
        # same point (e.g. both re-learned from the same snapshot); exact
        # duplicates would only trigger the degenerate-update refit fallback.
        seen = {row.tobytes() for row in emulator.gp.X_train} if emulator.n_training else set()
        keep = []
        for row_index, row in enumerate(X):
            key = row.tobytes()
            if key in seen:
                continue
            seen.add(key)
            keep.append(row_index)
        room = max(0, self._max_training_points(udf) - emulator.n_training)
        if len(keep) > room:
            self.last_dropped_points = len(keep) - room
            keep = keep[:room]
        if not keep:
            return
        emulator.absorb_observations(X[keep], y[keep])
        self.last_merged_points = len(keep)
        if self.merge == "refit-threshold" and self.last_merged_points >= self.refit_threshold:
            emulator.retrain()

    def _refresh_parent_from_store(self, udf: UDF, shared_store) -> None:
        """``merge="shared"`` epilogue: absorb the store into the parent model.

        Every row in the store was paid for by exactly one worker (and
        charged back to the parent UDF through the shard results), so the
        absorption spends zero UDF calls.  Wall-clock lands under the
        ``model_refresh`` phase; merged/dropped counts land in
        :attr:`last_merged_points` / :attr:`last_dropped_points`.
        """
        self.timings.ensure("model_refresh", "model_append")
        if shared_store is None or self.engine.strategy == "mc":
            return
        from repro.core.shared_model import EmulatorSync

        emulator = _emulator_of(self.engine, udf)
        if emulator is None:
            # Cold parent: create the processor so the shared rows warm it.
            self.engine._processor_for(udf)
            emulator = _emulator_of(self.engine, udf)
        if emulator is None:
            return
        sync = EmulatorSync(
            shared_store,
            emulator,
            max_training_points=self._max_training_points(udf),
            timings=self.timings,
        )
        self.last_merged_points = sync.refresh()
        self.last_dropped_points = sync.dropped_rows
        if emulator.n_training and not emulator._trained_hyperparameters:
            theta = shared_store.hyperparameters()
            if theta is not None:
                emulator.gp.set_hyperparameters(theta)
                emulator._trained_hyperparameters = True

    def _max_training_points(self, udf: UDF) -> int:
        """The OLGAPRO model-size cap behind ``udf``'s processor."""
        processor = self.engine._processors[udf.name]
        olgapro = processor._olgapro if isinstance(processor, HybridExecutor) else processor
        return int(olgapro.max_training_points)
