"""Asynchronous overlapped UDF evaluation for the OLGAPRO refinement loop.

The refinement loop is the engine's only blocking I/O-like step: every
iteration evaluates the black-box UDF and waits for the value before doing
any further GP work.  Batching (PR 1) already exposed those evaluations as a
queue — this module drains that queue *concurrently*.

:class:`AsyncRefinementExecutor` wraps a
:class:`~repro.engine.executor.UDFExecutionEngine` exactly like
:class:`~repro.engine.batch.BatchExecutor` does, but installs an
:class:`AsyncEvaluationDriver` on the UDF's OLGAPRO processor for the
duration of the computation.  The driver replaces the serial refinement loop
with a *windowed pipeline*:

1. select the ``async_inflight`` highest-variance distinct Monte-Carlo
   samples (the stable speculative top-k rule of
   :func:`~repro.core.olgapro.select_top_k_distinct` — the same selection
   PR 2's ``speculative_k`` uses),
2. submit all of them at once through the configured
   :class:`~repro.engine.transport.EvaluationTransport` — a bounded thread
   pool by default, an event loop for natively-async UDFs — so their
   black-box latencies overlap each other,
3. while later results are still in flight, absorb the earlier ones in
   **submission order** in deterministic chunks (doubling sizes ``1, 1, 2,
   4, ...``) through the blocked
   :func:`~repro.gp.linalg.block_inverse_update_multi` update, re-checking
   the error bound after each chunk — GP work overlaps in-flight UDF calls,
4. roll a chunk back via the O(1) emulator snapshot when it makes the bound
   strictly worse (committing only its best candidate, whose observation was
   already paid for), exactly like the speculative loop, and
5. stop as soon as the bound fits: results still in flight are *discarded*
   (waited for and charged — the UDF calls really happened — but never
   absorbed).

Determinism contract
--------------------
Completion order does not influence the result.  Results are consumed by
submission index (out-of-order completions simply buffer inside their
future), absorption chunk boundaries depend only on the window size, and
each chunk's absorb is *fenced* on the emulator snapshot it speculated
against (:meth:`~repro.core.emulator.GPEmulator.absorb_observations` rejects
a stale fence).  Under a fixed seed the async pipeline is therefore bitwise
reproducible for any thread scheduling, and ``async_inflight=1`` bypasses
the driver entirely — it *is* the serial batched path, bit for bit.

Like ``speculative_k``, a window absorbs up to ``async_inflight`` points per
bound re-check, so the refinement trajectory (and the output distribution)
differs from the serial loop at ``async_inflight > 1`` while honouring the
same (ε, δ) error-bound guarantee.  The win is wall-clock: with a UDF whose
calls cost real time (a remote service, an expensive simulation —
:class:`~repro.udf.synthetic.RealCostFunction` in the benchmarks), a window
of ``k`` calls costs roughly one latency instead of ``k``.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.filtering import SelectionPredicate
from repro.core.hybrid import HybridExecutor
from repro.core.olgapro import OLGAPRO, select_top_k_distinct
from repro.distributions.base import Distribution
from repro.engine.batch import DEFAULT_BATCH_SIZE, STORAGES, BatchExecutor
from repro.engine.executor import ComputedOutput, UDFExecutionEngine
from repro.engine.transport import (
    DEFAULT_TRANSPORT,
    EvaluationTransport,
    TransportSpec,
    make_transport,
    transport_name,
)
from repro.exceptions import QueryError
from repro.index.bounding_box import BoundingBox
from repro.timing import PhaseTimings
from repro.udf.base import UDF

#: Default bound on concurrently in-flight UDF evaluations: deep enough to
#: hide realistic black-box latency inside one refinement window, shallow
#: enough that speculative overshoot stays small.
DEFAULT_ASYNC_INFLIGHT = 8


def chunk_schedule(window: int) -> Iterator[tuple[int, int]]:
    """Deterministic absorption chunk boundaries for a window of ``window``.

    Yields ``(start, stop)`` slices with doubling sizes ``1, 1, 2, 4, ...``
    (the last chunk truncated).  The front-loaded small chunks give the
    pipeline early bound re-checks — absorbed while later candidates are
    still in flight — and the doubling keeps the number of re-checks per
    window logarithmic, preserving the speculative loop's factorization
    savings.  The schedule depends only on ``window``, never on completion
    timing; this is what makes out-of-order completions invisible.
    """
    start = 0
    size = 1
    first = True
    while start < window:
        stop = min(start + size, window)
        yield start, stop
        start = stop
        if first:
            first = False  # the second chunk is also a single point
        else:
            size *= 2


class AsyncEvaluationDriver:
    """Evaluation driver that overlaps in-flight UDF calls with GP work.

    Installed on an :class:`~repro.core.olgapro.OLGAPRO` processor by
    :class:`AsyncRefinementExecutor` (see the module docstring for the
    pipeline and its determinism contract).  The driver owns no state beyond
    the executor handle and the window bound, so one instance can serve
    every tuple of a computation.
    """

    def __init__(
        self, executor: Union[ThreadPoolExecutor, EvaluationTransport], inflight: int
    ):
        """Bind the driver to an evaluation carrier and a window bound.

        Parameters
        ----------
        executor:
            What carries the black-box calls: a thread pool, or any
            :class:`~repro.engine.transport.EvaluationTransport` (the
            submission goes through :meth:`~repro.udf.base.UDF
            .submit_rows`, which dispatches on the carrier type) — its
            concurrency should be at least ``inflight`` or submissions
            queue.
        inflight:
            Maximum UDF evaluations in flight per refinement window.
        """
        if inflight < 1:
            raise QueryError(f"inflight must be positive, got {inflight}")
        self.executor = executor
        self.inflight = int(inflight)

    def engaged(self, olgapro: OLGAPRO) -> bool:
        """Whether this driver should take over ``olgapro``'s refinement loop.

        ``inflight=1`` reports unengaged: one call in flight cannot overlap
        anything, and falling through to the stock loop keeps the path
        bit-identical to serial batched execution.
        """
        del olgapro
        return self.inflight > 1

    def tune(
        self,
        olgapro: OLGAPRO,
        samples: np.ndarray,
        box: BoundingBox,
        rng: np.random.Generator,
        envelope,
        bound: float,
        bound_is_fresh: bool = True,
    ):
        """Run the overlapped refinement pipeline for one tuple.

        Mirrors the contract of ``OLGAPRO._tune_serial`` /
        ``_tune_speculative``: returns ``(envelope, bound, points_added,
        converged)``.  ``rng`` is accepted for interface parity but never
        consumed — candidate selection is the deterministic top-k rule, so
        Monte-Carlo sampling stays the only consumer of the random stream.

        Raises
        ------
        UDFError
            When an evaluation that the pipeline needs fails or returns a
            non-finite value.  Failures of *discarded* speculative calls
            (submitted but no longer needed once the bound fits) are
            swallowed: serially those calls would never have happened.
        """
        del rng  # selection is deterministic; see the docstring
        epsilon_gp = olgapro.budget.epsilon_gp
        points_added = 0
        inference = None
        while bound > epsilon_gp:
            capacity = olgapro._refinement_capacity(points_added)
            if capacity <= 0:
                return envelope, bound, points_added, False
            if inference is None:
                inference, envelope, bound, realigned = olgapro._selection_inference(
                    samples, box, envelope, bound, bound_is_fresh
                )
                if realigned:
                    bound_is_fresh = True
                    continue
            window = min(self.inflight, capacity, samples.shape[0])
            order = select_top_k_distinct(samples, inference.stds, window)
            window = len(order)
            if window == 1:
                olgapro._absorb_candidate(samples[order[0]])
                points_added += 1
                inference, envelope, bound = olgapro._recheck(samples, box)
                continue

            futures = self._submit_window(olgapro, samples[order])
            olgapro.refinement_evaluations += window
            try:
                y = np.empty(window)
                for start, stop in chunk_schedule(window):
                    # The fence is captured *before* waiting: the chunk's
                    # results complete (on worker threads, in any order)
                    # while the snapshot they speculate against is live, and
                    # the absorb below rejects the chunk if anything mutated
                    # the model during that window.
                    fence = olgapro.emulator.snapshot()
                    # In-order waits: a result completing out of order just
                    # sits in its future until its submission slot is due.
                    for i in range(start, stop):
                        y[i] = futures[i].result()
                    bound_before = bound
                    olgapro.emulator.absorb_observations(
                        samples[order[start:stop]], y[start:stop], fence=fence
                    )
                    inference, envelope, bound = olgapro._recheck(samples, box)
                    if bound > bound_before and stop - start > 1:
                        # The chunk overshot: the shared rollback rule keeps
                        # only its best candidate (see OLGAPRO._rollback_to_best).
                        # A single-point chunk is exempt — rolling it back and
                        # re-committing the same point would rebuild the
                        # identical state at the cost of a wasted O(n^2)
                        # update and recheck (the serial rule keeps it too).
                        olgapro._rollback_to_best(
                            fence, samples[order[start : start + 1]], y[start : start + 1]
                        )
                        points_added += 1
                        inference, envelope, bound = olgapro._recheck(samples, box)
                    else:
                        points_added += stop - start
                    if bound <= epsilon_gp:
                        break
            finally:
                # Charge accounting stays deterministic: every submitted
                # evaluation completes (and is charged) before the tuple
                # finishes, whether its result was absorbed or discarded.
                # A transport carrier drains through its own settle step;
                # a raw pool settles future by future.
                if isinstance(self.executor, EvaluationTransport):
                    self.executor.drain(futures)
                else:
                    for future in futures:
                        _settle(future)
        return envelope, bound, points_added, True

    def _submit_window(self, olgapro: OLGAPRO, X: np.ndarray) -> list[Future]:
        """Dispatch one refinement window's evaluations, one future per row.

        Overridable seam: the base driver submits every row to the thread
        pool; the cross-tuple pipeline driver
        (:class:`~repro.engine.pipeline.PipelineEvaluationDriver`) first
        consults its speculative value pool so evaluations prefetched while
        earlier tuples refined are reused instead of re-paid.
        """
        return olgapro.udf.submit_rows(self.executor, X)


def _settle(future: Future) -> None:
    """Wait for a future, swallowing its exception (discarded speculation)."""
    future.exception()


class AsyncRefinementExecutor:
    """Batched execution with the refinement loop's UDF calls overlapped.

    The asynchronous sibling of :class:`~repro.engine.batch.BatchExecutor`
    (PR 1) and :class:`~repro.engine.parallel.ParallelExecutor` (PR 2): same
    ``compute_batch`` / ``compute_batch_with_predicate`` surface, same
    engine sharing, but while a tuple refines, up to ``inflight`` black-box
    evaluations run concurrently on a bounded thread pool.  See the module
    docstring for the pipeline and the determinism contract.

    Parameters
    ----------
    engine:
        The execution engine whose per-UDF processors do the work.  The
        ``"mc"`` strategy has no refinement loop, so it runs the plain
        batched path unchanged.
    inflight:
        Maximum concurrently in-flight UDF evaluations (the refinement
        window).  ``1`` disables overlap entirely and is bit-identical to
        :class:`BatchExecutor` under the same seed.
    batch_size:
        Chunk size of the underlying batched pipeline.
    transport:
        How the window's evaluations reach the black box: a registry name
        (``"threads"`` — the default bounded pool — or ``"asyncio"`` for
        natively-async UDFs) or an
        :class:`~repro.engine.transport.EvaluationTransport` instance.
        The transport is opened per computation and closed on every exit
        path, so the executor itself stays picklable and reusable.

    Raises
    ------
    QueryError
        On non-positive ``inflight`` / ``batch_size``, an unusable
        transport (unknown name, or ``"serial"`` with ``inflight > 1`` —
        inline evaluation cannot overlap a window), or when a driver is
        already installed on the target processor (nested async execution).
    """

    def __init__(
        self,
        engine: UDFExecutionEngine,
        inflight: int = DEFAULT_ASYNC_INFLIGHT,
        batch_size: int = DEFAULT_BATCH_SIZE,
        transport: Optional[TransportSpec] = None,
        storage: str = "tuple",
    ):
        """Validate the configuration and bind the engine (no evaluation
        resource yet — transports are opened per computation so the
        executor itself stays picklable and reusable)."""
        if inflight < 1:
            raise QueryError(f"inflight must be positive, got {inflight}")
        if batch_size < 1:
            raise QueryError(f"batch_size must be positive, got {batch_size}")
        if storage not in STORAGES:
            raise QueryError(f"unknown storage layout {storage!r}; choose from {STORAGES}")
        self.transport = transport if transport is not None else DEFAULT_TRANSPORT
        if transport_name(self.transport) == "serial" and inflight > 1:
            raise QueryError(
                "transport='serial' evaluates inline and cannot overlap "
                f"inflight={inflight} calls; use 'threads' or 'asyncio'"
            )
        self.engine = engine
        self.inflight = int(inflight)
        self.batch_size = int(batch_size)
        #: Storage layout of the underlying chunk pipeline ("tuple" or
        #: "columnar"); forwarded to the per-chunk BatchExecutor.
        self.storage = storage
        self.columnar = storage == "columnar"
        #: Per-phase wall-clock of the underlying batched pipeline.
        self.timings = PhaseTimings()

    # -- public API ---------------------------------------------------------------
    def compute_batch(
        self, udf: UDF, input_distributions: Sequence[Distribution]
    ) -> list[ComputedOutput]:
        """Evaluate ``udf`` on every tuple with overlapped refinement.

        Returns one :class:`~repro.engine.executor.ComputedOutput` per input
        distribution, in input order.
        """
        return self._run(udf, list(input_distributions), predicate=None)

    def compute_batch_with_predicate(
        self,
        udf: UDF,
        input_distributions: Sequence[Distribution],
        predicate: SelectionPredicate,
    ) -> list[ComputedOutput]:
        """Predicate (online-filtering) evaluation with overlapped refinement.

        The filtering decisions stay tuple-sequential (see
        :meth:`BatchExecutor.compute_batch_with_predicate`); the overlap
        applies inside each tuple's pilot and full refinement loops.
        """
        return self._run(udf, list(input_distributions), predicate=predicate)

    # -- internals ----------------------------------------------------------------
    def _run(
        self,
        udf: UDF,
        distributions: list[Distribution],
        predicate: Optional[SelectionPredicate],
    ) -> list[ComputedOutput]:
        """Install the driver (when it can engage), delegate, clean up."""
        if not distributions:
            return []
        # Fail fast on an incompatible UDF/transport pair even on the
        # degenerate paths (inflight=1, mc) that never open the transport:
        # a misconfiguration must not become visible only once the user
        # raises the window.
        transport = make_transport(self.transport)
        transport.accepts(udf)
        batch = BatchExecutor(self.engine, self.batch_size, storage=self.storage)
        try:
            if self.inflight == 1 or self.engine.strategy == "mc":
                return self._delegate(batch, udf, distributions, predicate)
            olgapro = self._olgapro_for(udf)
            if olgapro.evaluation_driver is not None:
                raise QueryError(
                    f"processor for UDF {udf.name!r} already has an evaluation "
                    "driver installed (nested async execution is not supported)"
                )
            # The session closes the transport on *every* exit path — a
            # QueryError mid-computation must not leak pool or event-loop
            # threads.
            with transport.session(self.inflight, label=udf.name) as carrier:
                olgapro.evaluation_driver = AsyncEvaluationDriver(carrier, self.inflight)
                try:
                    return self._delegate(batch, udf, distributions, predicate)
                finally:
                    olgapro.evaluation_driver = None
        finally:
            self.timings.merge(batch.timings)

    def _delegate(
        self,
        batch: BatchExecutor,
        udf: UDF,
        distributions: list[Distribution],
        predicate: Optional[SelectionPredicate],
    ) -> list[ComputedOutput]:
        """Run the (driver-aware) batched pipeline."""
        if predicate is None:
            return batch.compute_batch(udf, distributions)
        return batch.compute_batch_with_predicate(udf, distributions, predicate)

    def _olgapro_for(self, udf: UDF) -> OLGAPRO:
        """The OLGAPRO processor behind ``udf`` (created if still cold)."""
        processor = self.engine._processor_for(udf)
        if isinstance(processor, HybridExecutor):
            return processor._olgapro
        return processor
