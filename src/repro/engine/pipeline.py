"""Cross-tuple pipelined refinement: a dependency-aware stage scheduler.

PR 3's :class:`~repro.engine.async_exec.AsyncRefinementExecutor` overlaps
black-box UDF calls *within* one tuple's refinement, but the stages of
consecutive tuples still serialise: the sampling and first GP inference of
tuple *i + 1* wait behind the tail of tuple *i*'s refinement windows.  This
module closes that gap.  :class:`PipelinedExecutor` runs a chunk of tuples
as a small dependency DAG of stages

    sample  →  retrieve / infer  →  refine (UDF windows)  →  bound-check

over **one shared bounded thread pool**:

1. **sample** — the Monte-Carlo input samples of the whole chunk are drawn
   up front, in tuple order, so the shared random stream is consumed exactly
   as the serial batched path consumes it;
2. **retrieve / infer** — while tuple *i* refines, the initial cached GP
   inference (retrieval, envelope, error bound) of tuples *i + 1 … i +
   lookahead* runs *speculatively* on the pool against a snapshot view of
   the emulator, and the highest-variance candidates of each speculated
   tuple's first refinement window are **prefetched**: their UDF evaluations
   are submitted immediately, so the black-box latency of tuple *i + 1*'s
   first window hides under tuple *i*'s windows;
3. **refine** — committed strictly in tuple-submission order on the
   coordinating thread: the refinement windows consult the speculative value
   pool first (the UDF is deterministic, so a prefetched observation is the
   observation) and only pay for fresh evaluations on a miss;
4. **bound-check / commit** — the tuple's envelope, bound and retraining
   decision are finalised before the next tuple commits.

Determinism contract
--------------------
Speculation is *fenced* on the GP state version, exactly like PR 3's
within-window absorption: a speculative inference records the
:attr:`~repro.gp.regression.GaussianProcess.version` it was computed
against, and at commit time it is used only if the model has not moved
since.  A tuple whose fence went stale re-runs its inference against the
updated emulator — bitwise the computation the serial batched path performs
at that point.  All model mutations happen on the coordinating thread, in
tuple-submission order, so

* results are invariant to completion order and thread scheduling (a
  prefetched value equals the freshly evaluated one; a stale speculation is
  recomputed, never absorbed),
* ``pipeline_lookahead=1`` bypasses the scheduler entirely and **is** the
  serial batched path (or, with ``inflight > 1``, the PR 3 async path), bit
  for bit, and
* at ``lookahead > 1`` the committed refinement trajectory — and therefore
  the output distributions and error bounds — is bitwise the one the
  within-tuple async path (:class:`AsyncRefinementExecutor` with the same
  window) produces; only wall-clock and the *total* UDF call count change
  (unconsumed prefetches are paid for and discarded, like PR 3's discarded
  speculation; :attr:`PipelinedExecutor.last_wasted_calls` reports them).

Cost model
----------
Prefetched-but-unused evaluations are charged: the calls really happened.
Per-tuple ``udf_calls`` counts the evaluations each tuple's refinement
*consumed* (window submissions plus single-point absorptions — the same
number the async path charges per tuple), while per-tuple ``charged_time``
is attribution-approximate under cross-tuple overlap (evaluations for
several tuples complete concurrently); the UDF's own counters stay exact in
aggregate.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.emulator import EmulatorSnapshot
from repro.core.filtering import SelectionPredicate
from repro.core.hybrid import HybridExecutor
from repro.core.local_inference import BatchKernelCache, global_inference
from repro.core.olgapro import OLGAPRO, OnlineTupleResult, select_top_k_distinct
from repro.distributions.base import Distribution
from repro.engine.async_exec import (
    DEFAULT_ASYNC_INFLIGHT,
    AsyncEvaluationDriver,
    AsyncRefinementExecutor,
)
from repro.engine.batch import (
    DEFAULT_BATCH_SIZE,
    STORAGES,
    BatchExecutor,
    iter_batches,
    online_result_to_output,
)
from repro.engine.executor import ComputedOutput, UDFExecutionEngine
from repro.engine.transport import (
    DEFAULT_TRANSPORT,
    EvaluationTransport,
    TransportSpec,
    make_transport,
    transport_name,
)
from repro.exceptions import QueryError
from repro.gp.regression import GaussianProcess
from repro.index.bounding_box import BoundingBox
from repro.timing import PhaseTimings
from repro.udf.base import UDF

#: Default cross-tuple lookahead: deep enough that the first refinement
#: window of several upcoming tuples can hide under the current tuple's
#: windows, shallow enough that stale speculation stays cheap.
DEFAULT_PIPELINE_LOOKAHEAD = 4


class SpeculativeValuePool:
    """Point-keyed store of speculatively submitted UDF evaluations.

    Entries are keyed by the raw bytes of the evaluation point, so a
    prefetched observation is found again however the committing refinement
    arrives at the same candidate.  Submissions dedupe atomically (two
    speculative stages racing to prefetch the same point charge exactly one
    evaluation), claims happen only on the coordinating thread, and
    :meth:`settle` waits out every outstanding future so charge accounting
    is complete — and deterministic — before a chunk finishes.
    """

    def __init__(self, udf: UDF, executor: Union[ThreadPoolExecutor, EvaluationTransport]):
        self.udf = udf
        self.executor = executor
        self._lock = threading.Lock()
        self._futures: dict[bytes, Future] = {}
        self._claimed: set[bytes] = set()
        self._prefetched: set[bytes] = set()
        #: Evaluations submitted through the pool (each charged exactly
        #: once) — speculative prefetches *and* the committing refinement's
        #: own fetch-misses.
        self.submitted = 0

    def _get_or_submit(self, row: np.ndarray) -> tuple[bytes, Future]:
        """Atomic lookup-or-submit for one point (exactly one charge per key)."""
        key = row.tobytes()
        with self._lock:
            future = self._futures.get(key)
            if future is None:
                future = self.udf.submit_rows(self.executor, row[None, :])[0]
                self._futures[key] = future
                self.submitted += 1
            return key, future

    def prefetch(self, X: np.ndarray) -> list[Future]:
        """Speculatively submit evaluations for the rows of ``X``.

        Returns one future per row, in row order; a row whose evaluation is
        already pooled gets the existing future, so repeated prefetches
        never double-charge.  The check-and-submit is atomic under the pool
        lock — a speculative walk and a committing refinement racing to the
        same point charge exactly one evaluation, which keeps the total call
        count deterministic however threads interleave.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        futures: list[Future] = []
        for row in X:
            key, future = self._get_or_submit(row)
            with self._lock:
                # Only keys this walk (or a sibling) *paid for ahead of any
                # consumer* count as speculative; a key first submitted by a
                # committing fetch-miss stays attributed to the commit path.
                if key not in self._claimed:
                    self._prefetched.add(key)
            futures.append(future)
        return futures

    def fetch(self, x: np.ndarray) -> Future:
        """Consume the evaluation of ``x``: pooled if prefetched, fresh otherwise.

        Every evaluation a committing refinement needs goes through here, so
        whether a speculative walk got to the point first only decides *who
        paid* — never whether the point is paid for twice.  The key is
        marked consumed for the waste accounting.
        """
        key, future = self._get_or_submit(np.asarray(x, dtype=float))
        with self._lock:
            self._claimed.add(key)
        return future

    def fetch_value(self, x: np.ndarray) -> float:
        """Blocking :meth:`fetch`, installed as the processor's ``value_source``.

        Routes the single-point refinement paths (the serial Algorithm-5
        loop, the speculative ``k == 1`` branch) through the pool as well,
        so prefetched singles are reused and fresh singles stay
        deduplicated against in-flight speculation.
        """
        return float(self.fetch(x).result())

    @property
    def prefetched(self) -> int:
        """Evaluations genuinely prefetched ahead of any consumer."""
        with self._lock:
            return len(self._prefetched)

    @property
    def wasted(self) -> int:
        """Prefetched evaluations never consumed by any tuple's refinement."""
        with self._lock:
            return len(self._prefetched - self._claimed)

    def settle(self) -> None:
        """Wait for every outstanding evaluation, swallowing failures.

        Unclaimed speculation mirrors PR 3's discarded speculation: the
        calls are paid for (the black box really ran) but never absorbed,
        and their failures are irrelevant — serially they would never have
        happened.
        """
        for future in self._futures.values():
            future.exception()


class PipelineEvaluationDriver(AsyncEvaluationDriver):
    """Window driver that consults the speculative value pool first.

    Behaves exactly like :class:`AsyncEvaluationDriver` — same windows, same
    deterministic chunk schedule, same fenced absorption — except that each
    window row already prefetched by a speculative stage reuses the paid-for
    future instead of submitting a fresh evaluation.  Because the UDF is
    deterministic, the absorbed values are identical either way, so the
    refinement trajectory is bitwise the async driver's.
    """

    def __init__(
        self,
        executor: Union[ThreadPoolExecutor, EvaluationTransport],
        inflight: int,
        pool: SpeculativeValuePool,
    ):
        super().__init__(executor, inflight)
        self.pool = pool

    def _submit_window(self, olgapro: OLGAPRO, X: np.ndarray) -> list[Future]:
        """One future per row, all routed through the pool.

        A prefetched row reuses the paid-for future; a miss submits fresh —
        through the same deduplicated pool, so a speculative walk arriving
        at the point later never double-charges it.
        """
        del olgapro  # the pool owns the UDF handle
        return [self.pool.fetch(row) for row in X]


@dataclass
class _SpeculationResult:
    """What one speculative retrieve/infer stage hands to the commit loop."""

    inference: object = None
    envelope: object = None
    bound: float = float("nan")
    #: Exception raised inside the stage; treated exactly like a stale
    #: fence (the commit loop recomputes), because a speculative read racing
    #: a model mutation may fail where the settled recompute succeeds.
    error: Optional[BaseException] = None
    #: Pool-thread wall-clock the stage spent; recorded into the executor's
    #: timings by the *coordinating* thread when the stage is reaped, so the
    #: (unsynchronised) timing accumulator is never written concurrently.
    seconds: float = 0.0


@dataclass
class _PendingTuple:
    """Bookkeeping for a submitted-but-not-committed tuple."""

    index: int
    fence: EmulatorSnapshot
    future: Future

    @property
    def fence_n(self) -> int:
        """Training-set size the speculation was fenced at."""
        return self.fence.gp_state.n_training


def _gp_view(gp: GaussianProcess, fence: EmulatorSnapshot) -> GaussianProcess:
    """Read-only clone of ``gp`` frozen at ``fence``.

    O(1): :meth:`~repro.gp.regression.GaussianProcess.restore` rebinds the
    snapshot's shared buffers (the GP never mutates arrays in place), so the
    view reproduces the fenced state bitwise without copying, and stays
    consistent however the live model evolves — this is what lets a
    speculative stage run on a pool thread while the coordinating thread
    keeps refining earlier tuples.
    """
    view = GaussianProcess(
        kernel=gp.kernel.clone(),
        noise_variance=gp.noise_variance,
        refresh_every=gp.refresh_every,
        center_targets=gp.center_targets,
    )
    view.restore(fence.gp_state)
    return view


class PipelinedExecutor:
    """Batched execution with refinement pipelined *across* tuples.

    The cross-tuple sibling of :class:`~repro.engine.batch.BatchExecutor`
    (PR 1), :class:`~repro.engine.parallel.ParallelExecutor` (PR 2) and
    :class:`~repro.engine.async_exec.AsyncRefinementExecutor` (PR 3): same
    ``compute_batch`` / ``compute_batch_with_predicate`` surface, same
    engine sharing, but while tuple *i* refines, the sampling, initial
    inference and first-window UDF evaluations of tuples *i + 1 … i +
    lookahead* already run on a shared bounded pool.  See the module
    docstring for the stage DAG and the determinism contract.

    Parameters
    ----------
    engine:
        The execution engine whose per-UDF processors do the work.  The
        ``"mc"`` strategy has no refinement loop, so it runs the plain
        batched path unchanged.
    lookahead:
        Tuples speculated ahead of the committing one.  ``1`` disables the
        scheduler: the computation is bit-identical to
        :class:`BatchExecutor` (or to :class:`AsyncRefinementExecutor` when
        ``inflight > 1``) under the same seed.
    inflight:
        Within-tuple refinement window, as in PR 3.  ``None`` defaults to
        :data:`~repro.engine.async_exec.DEFAULT_ASYNC_INFLIGHT` when the
        scheduler engages (prefetching needs windows to land in), and to the
        serial loop at ``lookahead=1``.
    batch_size:
        Chunk size of the underlying batched pipeline.  Speculation never
        crosses a chunk boundary (the kernel cache is per chunk).
    transport:
        How the refinement windows' and prefetch walks' evaluations reach
        the black box (``"threads"`` default, ``"asyncio"`` for
        natively-async UDFs, or an
        :class:`~repro.engine.transport.EvaluationTransport` instance).
        The speculative *stages* always run on a private thread pool —
        they are GP work, not black-box calls — whatever the transport.
    shared_refresh:
        Live-model walk refresh (the ``merge="shared"`` pipeline leg).
        When on, a prefetch walk that notices the live emulator has moved
        past its fence rebuilds its private view from a fresh snapshot,
        re-absorbs its own paid-for observations, and re-ranks — so walks
        stop mispredicting while the model is chaotic (a cold stream).
        Committed results are unaffected (walks only feed the deduplicated
        prefetch pool), but the *set of speculative prefetches* becomes
        timing-dependent, so the total call count at ``lookahead > 1`` may
        vary run to run; :attr:`last_walk_refreshes` reports how often the
        mechanism engaged.

    Raises
    ------
    QueryError
        On non-positive knobs, an unusable transport (``"serial"`` cannot
        carry an overlapped schedule), or when an evaluation driver is
        already installed on the target processor (nested pipelined
        execution).
    """

    def __init__(
        self,
        engine: UDFExecutionEngine,
        lookahead: int = DEFAULT_PIPELINE_LOOKAHEAD,
        inflight: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        transport: Optional[TransportSpec] = None,
        storage: str = "tuple",
        shared_refresh: bool = False,
    ):
        """Validate the configuration and bind the engine (pools are created
        per computation so the executor stays picklable and reusable)."""
        if lookahead < 1:
            raise QueryError(f"lookahead must be positive, got {lookahead}")
        if inflight is not None and inflight < 1:
            raise QueryError(f"inflight must be positive, got {inflight}")
        if batch_size < 1:
            raise QueryError(f"batch_size must be positive, got {batch_size}")
        if storage not in STORAGES:
            raise QueryError(f"unknown storage layout {storage!r}; choose from {STORAGES}")
        self.transport = transport if transport is not None else DEFAULT_TRANSPORT
        if transport_name(self.transport) == "serial" and (
            lookahead > 1 or (inflight is not None and inflight > 1)
        ):
            raise QueryError(
                "transport='serial' evaluates inline and cannot carry the "
                f"overlapped schedule (lookahead={lookahead}, inflight="
                f"{inflight}); use 'threads' or 'asyncio'"
            )
        self.engine = engine
        self.lookahead = int(lookahead)
        self.inflight = int(inflight) if inflight is not None else None
        self.batch_size = int(batch_size)
        #: Storage layout of the chunk prologue ("tuple" or "columnar");
        #: forwarded to begin_chunk and every delegated executor.
        self.storage = storage
        self.columnar = storage == "columnar"
        #: Refresh prefetch walks to the live model when it outruns their
        #: fence (the ``merge="shared"`` pipeline leg; see the class
        #: docstring for the determinism trade).
        self.shared_refresh = bool(shared_refresh)
        #: Per-phase wall-clock; ``"speculation"`` accumulates pool-thread
        #: work on top of the batched pipeline's phases.
        self.timings = PhaseTimings()
        #: Evaluations prefetched by the last compute call.
        self.last_speculative_calls = 0
        #: Prefetched evaluations the last compute call never consumed.
        self.last_wasted_calls = 0
        #: Walk fence refreshes performed by the last compute call
        #: (``shared_refresh`` only; 0 when the mechanism is off or the
        #: model never outran a walk).
        self.last_walk_refreshes = 0

    # -- public API ---------------------------------------------------------------
    def compute_batch(
        self, udf: UDF, input_distributions: Sequence[Distribution]
    ) -> list[ComputedOutput]:
        """Evaluate ``udf`` on every tuple with cross-tuple pipelining.

        Returns one :class:`~repro.engine.executor.ComputedOutput` per input
        distribution, in input order.
        """
        return self._run(udf, list(input_distributions), predicate=None)

    def compute_batch_with_predicate(
        self,
        udf: UDF,
        input_distributions: Sequence[Distribution],
        predicate: SelectionPredicate,
    ) -> list[ComputedOutput]:
        """Predicate (online-filtering) evaluation.

        Filtering decisions are inherently tuple-sequential (each pilot draw
        feeds the shared random stream), so the cross-tuple scheduler stands
        down and the within-tuple overlap of the async path applies instead.
        """
        return self._run(udf, list(input_distributions), predicate=predicate)

    # -- delegation ----------------------------------------------------------------
    def _delegate_executor(self, default_window: bool = False):
        """The non-pipelined executor the degenerate paths delegate to.

        ``default_window`` applies the scheduler's window default
        (:data:`DEFAULT_ASYNC_INFLIGHT`) when ``inflight`` was left unset —
        used by the predicate path at ``lookahead > 1``, where the user
        opted into overlap and only the *cross-tuple* half stands down.
        At ``lookahead = 1`` the default stays off, preserving the
        bit-identity contract with the serial batched path.
        """
        inflight = self.inflight
        if inflight is None and default_window:
            inflight = DEFAULT_ASYNC_INFLIGHT
        if inflight is not None and inflight > 1:
            return AsyncRefinementExecutor(
                self.engine, inflight=inflight, batch_size=self.batch_size,
                transport=self.transport, storage=self.storage,
            )
        return BatchExecutor(self.engine, self.batch_size, storage=self.storage)

    def _run(
        self,
        udf: UDF,
        distributions: list[Distribution],
        predicate: Optional[SelectionPredicate],
    ) -> list[ComputedOutput]:
        self.last_speculative_calls = 0
        self.last_wasted_calls = 0
        self.last_walk_refreshes = 0
        try:
            if not distributions:
                return []
            # Fail fast on an incompatible UDF/transport pair even on the
            # degenerate paths (lookahead=1, predicate, mc) that delegate
            # without opening the transport themselves (the async delegate
            # re-checks, the batch delegate never would).
            make_transport(self.transport).accepts(udf)
            if (
                self.lookahead == 1
                or predicate is not None
                or self.engine.strategy == "mc"
            ):
                delegate = self._delegate_executor(
                    default_window=predicate is not None and self.lookahead > 1
                )
                try:
                    if predicate is None:
                        return delegate.compute_batch(udf, distributions)
                    return delegate.compute_batch_with_predicate(
                        udf, distributions, predicate
                    )
                finally:
                    self.timings.merge(delegate.timings)
            return self._run_pipelined(udf, distributions)
        finally:
            # Whatever path ran (including the empty degenerate one), report
            # a complete phase record: downstream timing consumers must
            # never see this executor's phase set vary with the input.
            self.timings.ensure("sampling", "inference", "refinement", "speculation")

    # -- the scheduler -------------------------------------------------------------
    def _run_pipelined(self, udf: UDF, distributions: list[Distribution]) -> list[ComputedOutput]:
        olgapro = self._olgapro_for(udf)
        if olgapro.evaluation_driver is not None:
            raise QueryError(
                f"processor for UDF {udf.name!r} already has an evaluation "
                "driver installed (nested pipelined execution is not supported)"
            )
        window = self.inflight if self.inflight is not None else DEFAULT_ASYNC_INFLIGHT
        # Two bounded carriers, split by *blocking behaviour*.  Black-box
        # evaluations never block on anything, so a dedicated evaluation
        # transport always makes progress; speculative stages and refinement
        # walks DO block (on evaluation futures), so they get their own
        # thread pool — a pile-up of blocked walks can delay other stages,
        # never the evaluations they are waiting on.  Putting both kinds on
        # one carrier would deadlock once every worker held a blocked walk
        # with the evaluations it awaits still queued behind it.
        # Eval sizing: the commit window plus each concurrent walk's padded
        # prefetches can sleep simultaneously; beyond that, queued
        # evaluations only add latency (never deadlock — eval tasks do not
        # block), so the count is capped rather than scaled without bound.
        eval_workers = 2 + min(64, window * (1 + 2 * self.lookahead))
        stage_workers = 2 * self.lookahead + 2
        outputs: list[ComputedOutput] = []
        #: points_added of recently committed tuples, shared across chunks.
        #: Calibrates both the walk-depth cap and the full-versus-cheap
        #: speculative inference choice (see :meth:`_run_chunk`).
        recent_depths: list[int] = []
        transport = make_transport(self.transport)
        transport.accepts(udf)
        # The session closes the transport on every exit path (QueryError
        # included), so a failed chunk never leaks evaluation threads.
        with transport.session(
            eval_workers, label=f"eval-{udf.name}"
        ) as eval_pool, ThreadPoolExecutor(
            max_workers=stage_workers, thread_name_prefix=f"udf-pipeline-{udf.name}"
        ) as stage_pool:
            for chunk in iter_batches(distributions, self.batch_size):
                outputs.extend(
                    self._run_chunk(
                        udf, olgapro, list(chunk), eval_pool, stage_pool,
                        window, recent_depths,
                    )
                )
        return outputs

    def _run_chunk(
        self,
        udf: UDF,
        olgapro: OLGAPRO,
        chunk: list[Distribution],
        eval_pool: Union[ThreadPoolExecutor, EvaluationTransport],
        stage_pool: ThreadPoolExecutor,
        window: int,
        recent_depths: list[int],
    ) -> list[ComputedOutput]:
        """One chunk through the stage DAG (see the module docstring).

        Mirrors :meth:`OLGAPRO.process_batch` stage for stage — up-front
        ordered sampling, shared kernel cache, per-tuple initial bound,
        refinement only for tuples that miss the budget, retraining check —
        with the speculative stages layered on top.
        """
        if self.engine.strategy == "hybrid":
            processor = self.engine._processor_for(udf)
            decision = processor.decide(chunk[0])
            if decision.method == "mc":
                batch = BatchExecutor(self.engine, self.batch_size, storage=self.storage)
                try:
                    return batch._mc_chunk(udf, chunk, processor.requirement, processor._rng)
                finally:
                    self.timings.merge(batch.timings)

        rng = olgapro._rng
        emulator = olgapro.emulator

        # Stage "sample" plus the shared prologue, through the same helper
        # the batched path uses — identical random-stream consumption and
        # identical init-cost charging.  The initial design's UDF calls
        # overlap on the shared pool: with a slow black box they otherwise
        # cost n_points serial latencies before any stage can start (the
        # trained model is identical either way).
        prologue = olgapro.begin_chunk(
            chunk, rng, timings=self.timings,
            evaluation_executor=eval_pool, max_inflight=window,
            columnar=self.columnar,
        )
        init_calls = prologue.init_calls
        init_charged = prologue.init_charged
        init_elapsed = prologue.init_elapsed
        m = prologue.n_samples
        sample_sets = prologue.sample_sets
        sample_seconds = prologue.sample_seconds
        boxes = prologue.boxes
        cache = prologue.cache
        cache_share = prologue.cache_share
        cache_lock = threading.Lock()

        pool = SpeculativeValuePool(udf, eval_pool)
        driver = PipelineEvaluationDriver(eval_pool, window, pool)
        olgapro.evaluation_driver = driver
        olgapro.value_source = pool.fetch_value
        pending: dict[int, _PendingTuple] = {}
        #: Free-running refinement walks; never awaited by the commit loop
        #: (a slow walk must not stall a fast commit), only drained at the
        #: end of the chunk so every prefetch lands and is charged.
        walks: list[Future] = []
        #: Speculative stages replaced by a fence refresh; still drained at
        #: the end of the chunk so their prefetches land and are charged.
        superseded: list[Future] = []

        def submit_speculation(j: int) -> None:
            """Stage "retrieve/infer" for tuple ``j``, fenced on the live version.

            Both calibrations here read ``recent_depths`` — the committed
            tuples' real refinement depths — on the coordinating thread, so
            they are deterministic:

            * the walk-depth cap sits near twice the recent real depth (a
              speculative view misses whatever neighbouring tuples taught
              the model after its fence, so its own bound converges slower
              than the committed one will; without the cap a stale walk
              phantom-refines to the per-tuple limit), and
            * the full (reusable-at-commit) fenced inference is only worth
              computing after a quiet streak — when commits are not moving
              the model and the fence will actually survive.
            """
            fence = emulator.snapshot()
            view = _gp_view(emulator.gp, fence)
            if recent_depths:
                tail = recent_depths[-8:]
                walk_cap = max(window, int(np.ceil(1.5 * sum(tail) / len(tail))))
            else:
                # No history yet (cold model): the first tuples refine the
                # deepest, so a window-derived guess would stop their walks
                # after a fraction of the rounds they will actually run.
                walk_cap = max(2 * window, 16)
            walk_cap = min(walk_cap, olgapro.max_points_per_tuple)
            full_inference = bool(recent_depths) and sum(recent_depths[-4:]) == 0
            future = stage_pool.submit(
                self._speculate, olgapro, view, cache, cache_lock,
                sample_sets[j], boxes[j], j, pool, window, stage_pool, walks,
                walk_cap, full_inference, fence.gp_state.version,
            )
            pending[j] = _PendingTuple(index=j, fence=fence, future=future)

        results: list[OnlineTupleResult] = []
        try:
            for j in range(min(self.lookahead, len(chunk))):
                submit_speculation(j)
            for i, samples in enumerate(sample_sets):
                started = time.perf_counter()
                charged_before = udf.charged_time
                state = pending.pop(i)
                # Always wait: the stage was submitted, so its prefetches
                # must land (and be charged) whether or not the fence held —
                # this is what keeps the total call count deterministic.
                speculation = state.future.result()
                self.timings.add("speculation", speculation.seconds)
                fence_ok = (
                    speculation.error is None
                    and speculation.envelope is not None
                    and emulator.gp.version == state.fence.gp_state.version
                )
                infer = olgapro._make_cached_infer(cache, i)
                phase_started = time.perf_counter()
                if fence_ok:
                    envelope, bound = speculation.envelope, speculation.bound
                else:
                    # Stale fence: re-run the inference against the updated
                    # emulator — bitwise the serial batched computation.
                    with cache_lock:
                        cache.invalidate_rows()
                        envelope, bound = olgapro._infer_and_bound(
                            samples, boxes[i], infer=infer
                        )
                self.timings.add("inference", time.perf_counter() - phase_started)
                points_added = 0
                converged = True
                evals_before = olgapro.refinement_evaluations
                if bound > olgapro.budget.epsilon_gp:
                    refine_started = time.perf_counter()
                    envelope, bound, points_added, converged = olgapro._tune_until_bounded(
                        samples, boxes[i], rng, initial=(envelope, bound)
                    )
                    self.timings.add("refinement", time.perf_counter() - refine_started)
                # Coordinator-thread counter delta: counts every evaluation
                # this tuple's refinement consumed (windows, speculative
                # blocks including rollbacks, singles) without being
                # polluted by prefetches completing for other tuples.
                consumed_calls = olgapro.refinement_evaluations - evals_before
                retrained = olgapro._maybe_retrain(points_added)
                if retrained:
                    with cache_lock:
                        cache.invalidate_rows()
                        envelope, bound = olgapro._infer_and_bound(
                            samples, boxes[i], infer=infer
                        )
                elapsed = time.perf_counter() - started + sample_seconds[i] + cache_share
                if i == 0:
                    elapsed += init_elapsed
                recent_depths.append(points_added)
                olgapro._tuples_processed += 1
                results.append(
                    olgapro._tuple_result(
                        envelope,
                        bound,
                        converged=converged,
                        points_added=points_added,
                        n_samples=m,
                        udf_calls=consumed_calls + (init_calls if i == 0 else 0),
                        charged_time=udf.charged_time - charged_before + elapsed
                        + (init_charged if i == 0 else 0.0),
                        elapsed_time=elapsed,
                        retrained=retrained,
                    )
                )
                next_index = i + self.lookahead
                if next_index < len(chunk):
                    submit_speculation(next_index)
                # Fence refresh: when this commit's refinement moved the
                # model a whole window past what the *next* tuple's
                # speculation was fenced on, that speculation is ranking
                # candidates against a world that no longer exists — its
                # prefetches would largely miss.  Re-speculate it on the
                # settled state (the old walk runs on to its deterministic
                # cap, so the total charge count stays deterministic; the
                # pool dedupes whatever the two walks agree on).  A warm
                # stream adds no points, so this never fires there.
                refresh = pending.get(i + 1)
                if refresh is not None and emulator.n_training - refresh.fence_n >= window:
                    superseded.append(refresh.future)
                    submit_speculation(i + 1)
        finally:
            olgapro.evaluation_driver = None
            olgapro.value_source = None
            # A failed commit leaves later stages pending, and fence
            # refreshes leave superseded ones; both must still settle so
            # every prefetch lands and is charged — and their pool-thread
            # seconds still count toward the speculation phase, or a
            # refresh-heavy run would under-report the work it spent.
            for future in [state.future for state in pending.values()] + superseded:
                try:
                    self.timings.add("speculation", future.result().seconds)
                except BaseException:
                    pass
            for walk in walks:
                try:
                    self.last_walk_refreshes += int(walk.result() or 0)
                except BaseException:
                    pass
            pool.settle()
            self.last_speculative_calls += pool.prefetched
            self.last_wasted_calls += pool.wasted
        return [online_result_to_output(result) for result in results]

    def _speculate(
        self,
        olgapro: OLGAPRO,
        view: GaussianProcess,
        cache: BatchKernelCache,
        cache_lock: threading.Lock,
        samples: np.ndarray,
        box: BoundingBox,
        j: int,
        pool: SpeculativeValuePool,
        window: int,
        stage_pool: ThreadPoolExecutor,
        walks: list[Future],
        walk_cap: int,
        full_inference: bool,
        fence_version: int,
    ) -> _SpeculationResult:
        """Speculative retrieve/infer stage for tuple ``j`` (pool thread).

        Estimates the tuple's error bound against the fenced view and, when
        it misses the budget, hands the fenced state to a *free-running*
        refinement walk that prefetches the tuple's expected UDF evaluations
        (the commit loop waits for this stage, never for the walk).

        ``full_inference`` selects the estimate's fidelity: the exact cached
        inference (reusable bitwise at commit when the fence holds — worth
        its cost when the stream is quiet and fences survive) versus a cheap
        global-GP pass that only seeds the walk (the right trade in a
        refining stream, where every commit moves the model and fenced
        envelopes die anyway).  The choice is made deterministically on the
        coordinating thread.  Never touches the live model; any failure is
        reported (not raised) and handled like a stale fence.
        """
        started = time.perf_counter()
        try:
            if full_inference:
                with cache_lock:
                    inference = olgapro.cached_inference_with(view, cache, j)
                    envelope, bound = olgapro.bound_with(
                        view, inference, box, samples.shape[0]
                    )
                result = _SpeculationResult(inference=inference, envelope=envelope, bound=bound)
            else:
                inference = global_inference(view, samples)
                _, bound = olgapro.bound_with(view, inference, box, samples.shape[0])
                result = _SpeculationResult()
            if bound > olgapro.budget.epsilon_gp:
                walks.append(
                    stage_pool.submit(
                        self._walk_refinement,
                        olgapro, view, samples, box, pool, window,
                        inference.stds, walk_cap, fence_version,
                    )
                )
            result.seconds = time.perf_counter() - started
            return result
        except BaseException as exc:  # noqa: BLE001 - reported, handled at commit
            return _SpeculationResult(error=exc, seconds=time.perf_counter() - started)

    def _walk_refinement(
        self,
        olgapro: OLGAPRO,
        view: GaussianProcess,
        samples: np.ndarray,
        box: BoundingBox,
        pool: SpeculativeValuePool,
        window: int,
        stds: np.ndarray,
        walk_cap: int,
        fence_version: int,
    ) -> int:
        """Prefetch tuple ``j``'s expected refinement windows on the view.

        Window by window: prefetch the top-``window`` highest-variance
        candidates (plus a pad — the committed selection ranks by fresh
        variances, which differ from the speculative ones in the last ulps
        and by whatever the fence missed, so its top-k almost always sits
        inside the speculative top-(k + pad)), wait for the values (the
        waits are the point — they overlap earlier tuples' refinement on
        the shared pool), absorb them into the *private* view, and re-rank
        by the view's updated global variances.  Depth is bounded by
        ``walk_cap``, calibrated from recently committed tuples, so a walk
        whose fence went stale cannot phantom-refine to the per-tuple cap.

        The re-ranking deliberately uses plain global GP variance on the
        view — the cheapest update that tracks where the next window moves.
        It ranks candidates somewhat differently from the local-subset
        variances the committed selection uses, so windows after the first
        carry a *double* pad: a wider prefetch superset is far cheaper than
        the alternatives (running real local inference per walk window
        measurably costs more CPU than the misses it prevents, and a miss
        stalls the committing thread for a whole black-box latency).
        Everything else the commit path computes per window (envelope,
        band, bound, chunk-level rechecks) is skipped: the walk only needs
        the ranking.

        The view is private to this stage, so nothing here touches the live
        emulator or the shared chunk cache; the only shared effect is the
        deduplicated prefetch pool.

        Under :attr:`shared_refresh` the walk additionally watches the live
        model between windows: when its version has moved past
        ``fence_version`` (neighbouring commits — or, in a shard, the shared
        store — taught the model something this walk cannot see), the walk
        rebuilds its view from a fresh snapshot, re-absorbs its *own*
        already-paid-for observations (deduplicated against what the live
        model absorbed meanwhile), re-ranks — and re-checks the tuple's
        error bound on the refreshed view: a bound already inside the
        budget means the commit will converge without refinement, so the
        walk stops instead of prefetching evaluations nobody will consume.
        Returns the number of such refreshes (always 0 with
        ``shared_refresh`` off).
        """
        emulator = olgapro.emulator
        m = samples.shape[0]
        points_used = 0
        first_window = True
        refreshes = 0
        #: Observations this walk absorbed into its view — paid for and
        #: deterministic given the view, so safe to re-absorb after a
        #: fence refresh.
        own_rows: list[np.ndarray] = []
        own_values: list[float] = []
        while True:
            if (
                self.shared_refresh
                and not first_window
                and emulator.gp.version != fence_version
            ):
                # The live model outran this walk's fence: re-fence.  The
                # snapshot read races commit-thread mutations; the buffers
                # themselves are never mutated in place, but a torn
                # state-object read can still fail — in that case keep the
                # old view and retry at the next window.
                try:
                    fence = emulator.snapshot()
                    fresh = _gp_view(emulator.gp, fence)
                    have = (
                        {row.tobytes() for row in fresh.X_train}
                        if fresh.n_training
                        else set()
                    )
                    keep = [
                        idx
                        for idx, row in enumerate(own_rows)
                        if row.tobytes() not in have
                    ]
                    room = max(0, olgapro.max_training_points - fresh.n_training)
                    keep = keep[:room]
                    if keep:
                        fresh.add_points(
                            np.asarray([own_rows[idx] for idx in keep]),
                            np.asarray([own_values[idx] for idx in keep]),
                        )
                    view = fresh
                    fence_version = fence.gp_state.version
                    refreshes += 1
                    inference = global_inference(view, samples)
                    _, bound = olgapro.bound_with(view, inference, box, m)
                    if bound <= olgapro.budget.epsilon_gp:
                        # What the model learned since the fence already
                        # answers this tuple: the commit will converge
                        # without refinement, so every further prefetch
                        # would be waste.
                        return refreshes
                    stds = inference.stds
                except Exception:  # noqa: BLE001 - torn read; old view still valid
                    pass
            capacity = min(
                walk_cap - points_used,
                olgapro.max_training_points - view.n_training,
            )
            if capacity <= 0:
                return refreshes
            k = min(window, capacity, m)
            pad = min(k + max(2, k // 4) if first_window else 2 * k, m)
            prefetch = select_top_k_distinct(samples, stds, pad)
            # The stable selection makes top-k a prefix of top-(k + pad).
            order = prefetch[:k]
            k = len(order)
            if k == 0:
                return refreshes
            futures = pool.prefetch(samples[prefetch])[:k]
            y = np.array([future.result() for future in futures])
            view.add_points(samples[order], y)
            own_rows.extend(np.array(samples[idx], dtype=float) for idx in order)
            own_values.extend(float(value) for value in y)
            points_used += k
            first_window = False
            _, stds = view.predict(samples, return_std=True)

    def _olgapro_for(self, udf: UDF) -> OLGAPRO:
        """The OLGAPRO processor behind ``udf`` (created if still cold)."""
        processor = self.engine._processor_for(udf)
        if isinstance(processor, HybridExecutor):
            return processor._olgapro
        return processor
