"""The `Session` facade: the one supported client entry to query serving.

Part 1 of the API redesign collapses the legacy per-layer ``compute_*``
engine methods into two supported paths: batch callers build an
:class:`~repro.engine.plan.ExecutionPlan` and call
:meth:`~repro.engine.executor.UDFExecutionEngine.compute_with_plan` (or
``Query.run``); serving callers open one :class:`Session` and
:meth:`~Session.submit` queries to it.  A session binds together

* an **engine factory** — each submitted query gets a *fresh* engine, so
  per-query results stay bit-identical to running that query alone with
  the same seed (the factory is where a caller varies seeds per query);
* a **default plan** — installed on every fresh engine, so one plan
  configures the whole workload without threading ``plan=`` through every
  query-builder call; and
* a **service** — either one the session creates and owns (closed with
  the session) or an external long-lived
  :class:`~repro.engine.service.QueryService` shared across sessions.

Typical use::

    from repro.engine import ExecutionPlan, Query, Session, UDFExecutionEngine

    with Session(lambda: UDFExecutionEngine("gp", requirement=req, random_state=7),
                 plan=ExecutionPlan(batch_size=16)) as session:
        handle = session.submit(Query(galaxy).apply_udf(galage, ["redshift"],
                                                        alias="galage"))
        for event in handle.stream():      # anytime verdicts as bounds settle
            ...
        result = handle.result()           # final, bit-identical QueryResult
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.engine.service import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKER_BUDGET,
    QueryHandle,
    QueryService,
)

if TYPE_CHECKING:  # avoid runtime cycles with the executor/query layers
    from repro.engine.executor import UDFExecutionEngine
    from repro.engine.plan import ExecutionPlan
    from repro.engine.query import Query
    from repro.engine.result import QueryResult


class Session:
    """Client facade binding an engine factory and default plan to a service.

    Create one per client (cheap), optionally sharing one long-lived
    :class:`~repro.engine.service.QueryService` across many sessions via
    ``service=``; a session constructs and owns its own service when none
    is passed, closing it on :meth:`close` / context-manager exit.
    """

    def __init__(
        self,
        engine_factory: "Callable[[], UDFExecutionEngine]",
        service: Optional[QueryService] = None,
        plan: "Optional[ExecutionPlan | str]" = None,
        worker_budget: int = DEFAULT_WORKER_BUDGET,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        share_models: bool = False,
    ) -> None:
        """Bind the factory and default plan; start a service if not given.

        ``worker_budget`` / ``queue_limit`` / ``share_models`` configure
        the owned service and are ignored when an external ``service`` is
        supplied (that service's configuration wins).

        ``plan`` may be the string ``"auto"``: every submitted query then
        resolves its execution plan from the catalog profile of the UDF
        it evaluates (:meth:`ExecutionPlan.auto
        <repro.engine.plan.ExecutionPlan.auto>`) — one session default
        that adapts per UDF instead of fixing one knob setting for the
        whole workload.
        """
        self._factory = engine_factory
        self.plan = plan
        self._owns_service = service is None
        self.service = (
            service
            if service is not None
            else QueryService(
                worker_budget=worker_budget,
                queue_limit=queue_limit,
                share_models=share_models,
            )
        )

    def submit(
        self,
        query: "Query",
        plan: "Optional[ExecutionPlan | str]" = None,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
        region: str = "default",
    ) -> QueryHandle:
        """Submit one query on a fresh engine; returns its handle at once.

        ``plan`` overrides the session default for this query only.  See
        :meth:`QueryService.submit
        <repro.engine.service.QueryService.submit>` for ``timeout`` /
        ``region`` semantics and the
        :class:`~repro.exceptions.ServiceOverloadError` admission
        contract.
        """
        engine = self._factory()
        return self.service.submit(
            query,
            engine,
            plan=plan if plan is not None else self.plan,
            timeout=timeout,
            name=name,
            region=region,
        )

    def run(
        self,
        query: "Query",
        plan: "Optional[ExecutionPlan | str]" = None,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
        region: str = "default",
    ) -> "QueryResult":
        """Submit and block for the final result (submit + ``result()``)."""
        return self.submit(
            query, plan=plan, timeout=timeout, name=name, region=region
        ).result()

    def close(self) -> None:
        """Close the owned service (no-op for an externally shared one)."""
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "Session":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    def __repr__(self) -> str:
        owned = "owned" if self._owns_service else "shared"
        return f"Session({owned} {self.service!r})"
