"""Batched query execution: set-at-a-time UDF evaluation over uncertain tuples.

The per-tuple engine (:class:`~repro.engine.executor.UDFExecutionEngine`)
re-enters Python-level loops — R-tree retrieval, kernel evaluations, local
Cholesky factorisations, error-bound sweeps — for every tuple.
:class:`BatchExecutor` instead accepts a whole chunk of tuples, draws the
Monte-Carlo input samples for all of them up front, runs GP inference over
the stacked samples in one pass (see
:meth:`~repro.core.local_inference.LocalInferenceEngine.predict_multi`), and
only falls back to the per-tuple OLGAPRO refinement loop for the tuples
whose combined error bound misses the budget.

Numerical contract: with a deterministic tuning strategy (the default
largest-variance rule) the batched pipeline consumes the shared random
stream in exactly the same order as per-tuple execution — Monte-Carlo
sampling is the only consumer — so under the same seed it produces the same
output distributions and error bounds as calling
:meth:`UDFExecutionEngine.compute` once per tuple.  Tuples carrying a
selection predicate keep per-tuple semantics (the pilot draw of tuple *i*
depends on the drop decision of tuple *i - 1*), so the predicate path
delegates tuple by tuple and stays equivalent by construction.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Sequence, TypeVar

import numpy as np

from repro.core.filtering import SelectionPredicate
from repro.core.hybrid import HybridExecutor
from repro.core.mc_baseline import mc_sample_count
from repro.distributions.base import Distribution
from repro.distributions.columns import attempt_encode, sample_stacked, stacking_supported
from repro.distributions.empirical import EmpiricalDistribution, TruncationResult
from repro.engine.executor import ComputedOutput, UDFExecutionEngine
from repro.exceptions import QueryError, UDFError
from repro.timing import PhaseTimings
from repro.udf.base import UDF

#: Physical layouts the batch pipeline accepts (mirrors the plan knob).
STORAGES = ("tuple", "columnar")

#: Default chunk size; large enough to amortise the stacked kernel algebra,
#: small enough to keep the stacked sample matrix in cache-friendly territory.
DEFAULT_BATCH_SIZE = 32

T = TypeVar("T")


def online_result_to_output(result) -> ComputedOutput:
    """Convert one OLGAPRO tuple result into the engine's output record.

    Shared by every batch-level executor that drives OLGAPRO directly (the
    batched pipeline here, the cross-tuple pipeline scheduler in
    :mod:`repro.engine.pipeline`), so the mapping from refinement results to
    :class:`~repro.engine.executor.ComputedOutput` lives in one place.
    """
    return ComputedOutput(
        distribution=result.distribution,
        error_bound=result.error_bound.epsilon_total,
        existence_probability=1.0,
        dropped=False,
        udf_calls=result.udf_calls,
        charged_time=result.charged_time,
        failed=getattr(result, "quarantined", False),
    )


def iter_batches(rows: Iterable[T], batch_size: int) -> Iterator[list[T]]:
    """Yield consecutive chunks of at most ``batch_size`` items."""
    if batch_size < 1:
        raise QueryError(f"batch_size must be positive, got {batch_size}")
    chunk: list[T] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def truncate_columns(
    distributions: Sequence[EmpiricalDistribution], low: float, high: float
) -> list[TruncationResult]:
    """Column-kernel predicate evaluation: truncate a block of ECDFs at once.

    Bit-identical to calling ``dist.truncate(low, high)`` per row: the
    per-row cut points are counts over sorted sample rows (exactly what
    ``searchsorted`` computes), the surviving samples are a contiguous slice
    of an already-sorted row, and the existence probability is the same
    count ratio.  Rows that are not same-size empirical distributions fall
    back to the scalar call.
    """
    distributions = list(distributions)
    if not distributions:
        return []
    if high < low:
        raise ValueError(f"interval upper bound {high} is below lower bound {low}")
    sizes = {
        dist.size for dist in distributions if isinstance(dist, EmpiricalDistribution)
    }
    uniform = len(sizes) == 1 and all(
        isinstance(dist, EmpiricalDistribution) for dist in distributions
    )
    if not (uniform and stacking_supported()):
        return [dist.truncate(low, high) for dist in distributions]
    block = np.stack([dist._sorted for dist in distributions])
    m = block.shape[1]
    lefts = np.sum(block < low, axis=1)
    rights = np.sum(block <= high, axis=1)
    results: list[TruncationResult] = []
    for row, left, right in zip(block, lefts, rights):
        existence = float((right - left) / m)
        truncated = (
            EmpiricalDistribution._from_sorted(row[left:right].copy())
            if right > left
            else None
        )
        results.append(
            TruncationResult(distribution=truncated, existence_probability=existence)
        )
    return results


class BatchExecutor:
    """Evaluates UDFs on chunks of uncertain tuples through one shared engine.

    The executor wraps an existing :class:`UDFExecutionEngine` — it shares
    the engine's per-UDF processors (the GP model warmed up by one path is
    reused by the other) and its random stream.  Phase timings (``sampling``
    / ``inference`` / ``refinement``) accumulate on :attr:`timings`.
    """

    def __init__(
        self,
        engine: UDFExecutionEngine,
        batch_size: int = DEFAULT_BATCH_SIZE,
        storage: str = "tuple",
    ):
        if batch_size < 1:
            raise QueryError(f"batch_size must be positive, got {batch_size}")
        if storage not in STORAGES:
            raise QueryError(f"unknown storage layout {storage!r}; choose from {STORAGES}")
        self.engine = engine
        self.batch_size = int(batch_size)
        self.storage = storage
        #: Whether chunks run through the columnar hot paths (stacked MC
        #: draws, column-armed kernel cache, batched envelope sweeps).
        #: Gated bit-identical to the tuple store under the same seed.
        self.columnar = storage == "columnar"
        self.timings = PhaseTimings()

    # -- evaluation without a predicate ------------------------------------------------
    def compute_batch(
        self, udf: UDF, input_distributions: Sequence[Distribution]
    ) -> list[ComputedOutput]:
        """Evaluate ``udf`` on every input tuple, chunked by ``batch_size``."""
        outputs: list[ComputedOutput] = []
        for chunk in iter_batches(input_distributions, self.batch_size):
            outputs.extend(self._compute_chunk(udf, chunk))
        if not outputs:
            # A zero-length input (an empty relation, or an all-empty column
            # block) is a legal batch: report explicit zero phases rather
            # than an absent report.
            self.timings.ensure("sampling", "inference", "refinement")
        return outputs

    # -- evaluation with a selection predicate ------------------------------------------
    def compute_batch_with_predicate(
        self,
        udf: UDF,
        input_distributions: Sequence[Distribution],
        predicate: SelectionPredicate,
    ) -> list[ComputedOutput]:
        """Predicate evaluation for a chunk of tuples.

        Online filtering is inherently sequential — each tuple's pilot draw
        and early-drop decision feed the shared random stream — so this
        delegates tuple by tuple, preserving exact equivalence with the
        per-tuple path while keeping the batch-level API uniform.
        """
        with self.timings.measure("filtering"):
            return [
                self.engine.compute_with_predicate(udf, dist, predicate)
                for dist in input_distributions
            ]

    # -- internals ------------------------------------------------------------------------
    def _compute_chunk(self, udf: UDF, chunk: Sequence[Distribution]) -> list[ComputedOutput]:
        chunk = list(chunk)
        if not chunk:
            return []
        try:
            return self._compute_chunk_inner(udf, chunk)
        except UDFError:
            # Backstop for failures the per-tuple quarantine inside OLGAPRO
            # cannot reach (the stacked pilot evaluation of a whole chunk, or
            # the plain-MC path): quarantine the chunk wholesale rather than
            # abort the query.
            if not UDFExecutionEngine._quarantine_enabled(udf):
                raise
            return [UDFExecutionEngine.quarantined_output() for _ in chunk]

    def _compute_chunk_inner(
        self, udf: UDF, chunk: list[Distribution]
    ) -> list[ComputedOutput]:
        strategy = self.engine.strategy
        if strategy == "mc":
            return self._mc_chunk(udf, chunk, self.engine.requirement, self.engine._rng)
        processor = self.engine._processor_for(udf)
        if isinstance(processor, HybridExecutor):
            decision = processor.decide(chunk[0])
            if decision.method == "mc":
                return self._mc_chunk(udf, chunk, processor.requirement, processor._rng)
            processor = processor._olgapro
        results = processor.process_batch(chunk, timings=self.timings, columnar=self.columnar)
        return [online_result_to_output(result) for result in results]

    def _mc_chunk(
        self,
        udf: UDF,
        chunk: list[Distribution],
        requirement,
        rng: np.random.Generator,
    ) -> list[ComputedOutput]:
        """Algorithm 1 over a chunk: stack the input samples, evaluate once."""
        m = mc_sample_count(requirement)
        started = time.perf_counter()
        column = None
        if self.columnar and stacking_supported():
            column = attempt_encode(chunk)
        if column is not None:
            # Columnar fast path: one stacked generator call fills the whole
            # (n, m) block in the per-tuple draw order, so the shared stream
            # advances identically and the stacked input is bit-identical.
            stacked_inputs = sample_stacked(column, m, rng).reshape(len(chunk) * m, -1)
        else:
            # Per-tuple draws in tuple order keep the stream identical to the
            # per-tuple path; stacking afterwards costs one copy.
            inputs = [dist.sample(m, random_state=rng) for dist in chunk]
            stacked_inputs = np.vstack(inputs)
        self.timings.add("sampling", time.perf_counter() - started)

        charged_before = udf.charged_time
        started = time.perf_counter()
        outputs = udf.evaluate_batch(stacked_inputs)
        self.timings.add("inference", time.perf_counter() - started)
        charged_share = (udf.charged_time - charged_before) / len(chunk)

        results: list[ComputedOutput] = []
        for i in range(len(chunk)):
            results.append(
                ComputedOutput(
                    distribution=EmpiricalDistribution(outputs[i * m : (i + 1) * m]),
                    error_bound=requirement.epsilon,
                    existence_probability=1.0,
                    dropped=False,
                    udf_calls=m,
                    charged_time=charged_share,
                )
            )
        return results
