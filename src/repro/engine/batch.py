"""Batched query execution: set-at-a-time UDF evaluation over uncertain tuples.

The per-tuple engine (:class:`~repro.engine.executor.UDFExecutionEngine`)
re-enters Python-level loops — R-tree retrieval, kernel evaluations, local
Cholesky factorisations, error-bound sweeps — for every tuple.
:class:`BatchExecutor` instead accepts a whole chunk of tuples, draws the
Monte-Carlo input samples for all of them up front, runs GP inference over
the stacked samples in one pass (see
:meth:`~repro.core.local_inference.LocalInferenceEngine.predict_multi`), and
only falls back to the per-tuple OLGAPRO refinement loop for the tuples
whose combined error bound misses the budget.

Numerical contract: with a deterministic tuning strategy (the default
largest-variance rule) the batched pipeline consumes the shared random
stream in exactly the same order as per-tuple execution — Monte-Carlo
sampling is the only consumer — so under the same seed it produces the same
output distributions and error bounds as calling
:meth:`UDFExecutionEngine.compute` once per tuple.  Tuples carrying a
selection predicate keep per-tuple semantics (the pilot draw of tuple *i*
depends on the drop decision of tuple *i - 1*), so the predicate path
delegates tuple by tuple and stays equivalent by construction.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Sequence, TypeVar

import numpy as np

from repro.core.filtering import SelectionPredicate
from repro.core.hybrid import HybridExecutor
from repro.core.mc_baseline import mc_sample_count
from repro.distributions.base import Distribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.engine.executor import ComputedOutput, UDFExecutionEngine
from repro.exceptions import QueryError, UDFError
from repro.timing import PhaseTimings
from repro.udf.base import UDF

#: Default chunk size; large enough to amortise the stacked kernel algebra,
#: small enough to keep the stacked sample matrix in cache-friendly territory.
DEFAULT_BATCH_SIZE = 32

T = TypeVar("T")


def online_result_to_output(result) -> ComputedOutput:
    """Convert one OLGAPRO tuple result into the engine's output record.

    Shared by every batch-level executor that drives OLGAPRO directly (the
    batched pipeline here, the cross-tuple pipeline scheduler in
    :mod:`repro.engine.pipeline`), so the mapping from refinement results to
    :class:`~repro.engine.executor.ComputedOutput` lives in one place.
    """
    return ComputedOutput(
        distribution=result.distribution,
        error_bound=result.error_bound.epsilon_total,
        existence_probability=1.0,
        dropped=False,
        udf_calls=result.udf_calls,
        charged_time=result.charged_time,
        failed=getattr(result, "quarantined", False),
    )


def iter_batches(rows: Iterable[T], batch_size: int) -> Iterator[list[T]]:
    """Yield consecutive chunks of at most ``batch_size`` items."""
    if batch_size < 1:
        raise QueryError(f"batch_size must be positive, got {batch_size}")
    chunk: list[T] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class BatchExecutor:
    """Evaluates UDFs on chunks of uncertain tuples through one shared engine.

    The executor wraps an existing :class:`UDFExecutionEngine` — it shares
    the engine's per-UDF processors (the GP model warmed up by one path is
    reused by the other) and its random stream.  Phase timings (``sampling``
    / ``inference`` / ``refinement``) accumulate on :attr:`timings`.
    """

    def __init__(self, engine: UDFExecutionEngine, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise QueryError(f"batch_size must be positive, got {batch_size}")
        self.engine = engine
        self.batch_size = int(batch_size)
        self.timings = PhaseTimings()

    # -- evaluation without a predicate ------------------------------------------------
    def compute_batch(
        self, udf: UDF, input_distributions: Sequence[Distribution]
    ) -> list[ComputedOutput]:
        """Evaluate ``udf`` on every input tuple, chunked by ``batch_size``."""
        outputs: list[ComputedOutput] = []
        for chunk in iter_batches(input_distributions, self.batch_size):
            outputs.extend(self._compute_chunk(udf, chunk))
        return outputs

    # -- evaluation with a selection predicate ------------------------------------------
    def compute_batch_with_predicate(
        self,
        udf: UDF,
        input_distributions: Sequence[Distribution],
        predicate: SelectionPredicate,
    ) -> list[ComputedOutput]:
        """Predicate evaluation for a chunk of tuples.

        Online filtering is inherently sequential — each tuple's pilot draw
        and early-drop decision feed the shared random stream — so this
        delegates tuple by tuple, preserving exact equivalence with the
        per-tuple path while keeping the batch-level API uniform.
        """
        with self.timings.measure("filtering"):
            return [
                self.engine.compute_with_predicate(udf, dist, predicate)
                for dist in input_distributions
            ]

    # -- internals ------------------------------------------------------------------------
    def _compute_chunk(self, udf: UDF, chunk: Sequence[Distribution]) -> list[ComputedOutput]:
        chunk = list(chunk)
        if not chunk:
            return []
        try:
            return self._compute_chunk_inner(udf, chunk)
        except UDFError:
            # Backstop for failures the per-tuple quarantine inside OLGAPRO
            # cannot reach (the stacked pilot evaluation of a whole chunk, or
            # the plain-MC path): quarantine the chunk wholesale rather than
            # abort the query.
            if not UDFExecutionEngine._quarantine_enabled(udf):
                raise
            return [UDFExecutionEngine.quarantined_output() for _ in chunk]

    def _compute_chunk_inner(
        self, udf: UDF, chunk: list[Distribution]
    ) -> list[ComputedOutput]:
        strategy = self.engine.strategy
        if strategy == "mc":
            return self._mc_chunk(udf, chunk, self.engine.requirement, self.engine._rng)
        processor = self.engine._processor_for(udf)
        if isinstance(processor, HybridExecutor):
            decision = processor.decide(chunk[0])
            if decision.method == "mc":
                return self._mc_chunk(udf, chunk, processor.requirement, processor._rng)
            processor = processor._olgapro
        results = processor.process_batch(chunk, timings=self.timings)
        return [online_result_to_output(result) for result in results]

    def _mc_chunk(
        self,
        udf: UDF,
        chunk: list[Distribution],
        requirement,
        rng: np.random.Generator,
    ) -> list[ComputedOutput]:
        """Algorithm 1 over a chunk: stack the input samples, evaluate once."""
        m = mc_sample_count(requirement)
        started = time.perf_counter()
        # Per-tuple draws in tuple order keep the stream identical to the
        # per-tuple path; stacking afterwards costs one copy.
        inputs = [dist.sample(m, random_state=rng) for dist in chunk]
        self.timings.add("sampling", time.perf_counter() - started)

        charged_before = udf.charged_time
        started = time.perf_counter()
        outputs = udf.evaluate_batch(np.vstack(inputs))
        self.timings.add("inference", time.perf_counter() - started)
        charged_share = (udf.charged_time - charged_before) / len(chunk)

        results: list[ComputedOutput] = []
        for i in range(len(chunk)):
            results.append(
                ComputedOutput(
                    distribution=EmpiricalDistribution(outputs[i * m : (i + 1) * m]),
                    error_bound=requirement.epsilon,
                    existence_probability=1.0,
                    dropped=False,
                    udf_calls=m,
                    charged_time=charged_share,
                )
            )
        return results
