"""Probabilistic query-engine substrate (S13, S14).

Public surface: uncertain schemas, tuples and relations; the synthetic
SDSS-like Galaxy generator; the UDF execution engine with MC / GP / hybrid
strategies; iterator-style physical operators; and the fluent query builder.
"""

from repro.engine.async_exec import (
    DEFAULT_ASYNC_INFLIGHT,
    AsyncEvaluationDriver,
    AsyncRefinementExecutor,
)
from repro.engine.batch import DEFAULT_BATCH_SIZE, BatchExecutor, iter_batches
from repro.engine.columnar import ColumnarRelation
from repro.engine.executor import ComputedOutput, Strategy, UDFExecutionEngine
from repro.engine.faults import FaultInjectingTransport
from repro.engine.operators import (
    ApplyUDF,
    CrossJoin,
    Operator,
    Project,
    Scan,
    SelectUDF,
    SelectWhere,
    materialize,
)
from repro.engine.parallel import (
    DEFAULT_REFIT_THRESHOLD,
    MERGE_POLICIES,
    MergePolicy,
    ParallelExecutor,
    default_worker_count,
)
from repro.engine.pipeline import (
    DEFAULT_PIPELINE_LOOKAHEAD,
    PipelineEvaluationDriver,
    PipelinedExecutor,
    SpeculativeValuePool,
)
from repro.engine.plan import (
    AUTO_PLAN,
    PRECEDENCE,
    ExecutionPlan,
    is_auto_plan,
    resolve_plan_argument,
)
from repro.engine.query import Query
from repro.engine.result import (
    VERDICT_CERTAIN,
    VERDICT_DEGRADED,
    VERDICT_EXCLUDED,
    VERDICT_POSSIBLE,
    QueryResult,
    TupleVerdict,
    classify_outputs,
    classify_rows,
)
from repro.engine.schema import Attribute, AttributeKind, Schema
from repro.engine.sdss import galaxy_schema, generate_galaxy_relation
from repro.engine.service import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKER_BUDGET,
    QueryEvent,
    QueryHandle,
    QueryService,
)
from repro.engine.session import Session
from repro.engine.transport import (
    DEFAULT_TRANSPORT,
    TRANSPORTS,
    AsyncioTransport,
    EvaluationTransport,
    SerialTransport,
    SubprocessPoolTransport,
    ThreadPoolTransport,
    make_transport,
)
from repro.engine.tuples import Relation, UncertainTuple

__all__ = [
    "Attribute",
    "AttributeKind",
    "Schema",
    "UncertainTuple",
    "Relation",
    "ColumnarRelation",
    "galaxy_schema",
    "generate_galaxy_relation",
    "UDFExecutionEngine",
    "ComputedOutput",
    "Strategy",
    "ExecutionPlan",
    "AUTO_PLAN",
    "PRECEDENCE",
    "is_auto_plan",
    "resolve_plan_argument",
    "EvaluationTransport",
    "SerialTransport",
    "ThreadPoolTransport",
    "AsyncioTransport",
    "SubprocessPoolTransport",
    "TRANSPORTS",
    "DEFAULT_TRANSPORT",
    "make_transport",
    "BatchExecutor",
    "DEFAULT_BATCH_SIZE",
    "iter_batches",
    "AsyncRefinementExecutor",
    "AsyncEvaluationDriver",
    "DEFAULT_ASYNC_INFLIGHT",
    "ParallelExecutor",
    "MergePolicy",
    "MERGE_POLICIES",
    "DEFAULT_REFIT_THRESHOLD",
    "PipelinedExecutor",
    "PipelineEvaluationDriver",
    "SpeculativeValuePool",
    "DEFAULT_PIPELINE_LOOKAHEAD",
    "Operator",
    "Scan",
    "Project",
    "SelectWhere",
    "CrossJoin",
    "ApplyUDF",
    "SelectUDF",
    "materialize",
    "Query",
    "QueryResult",
    "TupleVerdict",
    "VERDICT_CERTAIN",
    "VERDICT_POSSIBLE",
    "VERDICT_EXCLUDED",
    "VERDICT_DEGRADED",
    "FaultInjectingTransport",
    "classify_outputs",
    "classify_rows",
    "default_worker_count",
    "QueryService",
    "QueryHandle",
    "QueryEvent",
    "DEFAULT_WORKER_BUDGET",
    "DEFAULT_QUEUE_LIMIT",
    "Session",
]
