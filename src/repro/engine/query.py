"""A small fluent query builder over uncertain relations.

This is the user-facing layer of the query-engine substrate.  It builds the
physical plans of the operator module for queries shaped like the paper's
Q1 and Q2::

    # Q1: Select G.objID, GalAge(G.redshift) From Galaxy G
    result = (
        Query(galaxy)
        .apply_udf(galage, ["redshift"], alias="galage")
        .project(["objID", "galage"])
        .run(engine)
    )

    # Q2-style: join + UDF + range predicate on the UDF output
    result = (
        Query(galaxy).alias("G1")
        .cross_join(galaxy, alias="G2", pair_filter=lambda t: t["G1.objID"] < t["G2.objID"])
        .where_udf(distance, ["G1.ra_offset", "G1.dec_offset", "G2.ra_offset", "G2.dec_offset"],
                   alias="dist", low=0.5, high=2.0, threshold=0.1)
        .apply_udf(comove_vol, ["G1.redshift", "G2.redshift"], alias="covol")
        .run(engine)
    )
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.filtering import SelectionPredicate
from repro.engine.executor import UDFExecutionEngine
from repro.engine.operators import (
    ApplyUDF,
    CrossJoin,
    Operator,
    Project,
    Scan,
    SelectUDF,
    SelectWhere,
    legacy_knobs_supplied,
)
from repro.engine.plan import ExecutionPlan, is_auto_plan, resolve_plan_argument
from repro.engine.result import QueryResult
from repro.engine.transport import TransportSpec
from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import QueryError
from repro.udf.base import UDF


class Query:
    """Fluent builder that accumulates a plan of deferred operators."""

    def __init__(self, relation: Relation):
        self._relation = relation
        self._alias: str | None = None
        #: Deferred plan construction steps; each maps an Operator to the next.
        self._steps: list[Callable[[Operator, UDFExecutionEngine], Operator]] = []

    # -- plan-building steps ----------------------------------------------------------
    def alias(self, name: str) -> "Query":
        """Name this relation for use as a join prefix."""
        if not name:
            raise QueryError("alias must be non-empty")
        self._alias = name
        return self

    def cross_join(
        self,
        other: Relation,
        alias: str,
        pair_filter: Callable[[UncertainTuple], bool] | None = None,
    ) -> "Query":
        """Cartesian-join with another relation; attributes become prefixed."""
        left_alias = self._alias or self._relation.name
        if left_alias == alias:
            raise QueryError("join aliases must differ")

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return CrossJoin(
                child,
                Scan(other),
                left_prefix=left_alias,
                right_prefix=alias,
                pair_filter=pair_filter,
            )

        self._steps.append(_build)
        return self

    def where(self, predicate: Callable[[UncertainTuple], bool]) -> "Query":
        """Filter on certain attributes with an arbitrary Python predicate."""

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return SelectWhere(child, predicate)

        self._steps.append(_build)
        return self

    def apply_udf(
        self,
        udf: UDF | str,
        arguments: Sequence[str],
        alias: str,
        plan: ExecutionPlan | str | None = None,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: str = "union",
        parallel_seed: int | None = None,
        async_inflight: int | None = None,
        pipeline_lookahead: int | None = None,
        transport: TransportSpec | None = None,
    ) -> "Query":
        """Evaluate a UDF on each tuple and keep its output distribution.

        Parameters
        ----------
        udf:
            The black-box function to evaluate, or a registered catalog
            name (resolved case-insensitively through
            :func:`~repro.udf.catalog.default_catalog` at plan-build
            time).
        arguments:
            Input attribute names forming the UDF's argument vector.
        alias:
            Name of the derived output attribute.
        plan:
            One :class:`~repro.engine.plan.ExecutionPlan` describing the
            whole execution configuration — batching, sharding, overlap
            window, cross-tuple lookahead, merge policy, evaluation
            transport — validated as a unit (knob conflicts raise a typed
            :class:`~repro.exceptions.PlanError` naming the precedence
            rule) and resolved to the composed executor stack.  The
            string ``"auto"`` defers the choice to the profile-driven
            planner (:meth:`ExecutionPlan.auto
            <repro.engine.plan.ExecutionPlan.auto>`): the knobs are
            picked from the UDF's catalog profile once the operator knows
            the engine and the input size.
        batch_size, workers, merge, parallel_seed, async_inflight, \
pipeline_lookahead, transport:
            Legacy per-knob spellings of the same configuration; they
            build the equivalent plan (deprecation shim — see the
            migration note in the README).  Mutually exclusive with
            ``plan=``.

        Returns
        -------
        Query
            ``self``, for fluent chaining.

        Raises
        ------
        QueryError
            For unknown argument attributes or an alias collision (at
            plan-build time), or — as
            :class:`~repro.exceptions.PlanError`, raised *here*, at the
            builder call — an invalid execution plan.
        """
        # Resolve eagerly when anything was supplied: an invalid
        # configuration fails at THIS call (where the user wrote it), and
        # the legacy-kwargs deprecation warning points at the user's frame
        # instead of the deferred operator construction inside run().
        # When neither plan= nor any legacy knob was given, None is kept
        # so the operator can fall back to the engine's default plan (the
        # Session.submit seam) at plan-build time.
        legacy = dict(
            batch_size=batch_size, workers=workers, merge=merge,
            parallel_seed=parallel_seed, async_inflight=async_inflight,
            pipeline_lookahead=pipeline_lookahead, transport=transport,
        )
        resolved_plan: ExecutionPlan | str | None = None
        if is_auto_plan(plan):
            # "auto" needs the engine and input size, which only exist at
            # plan-build time — the validated string defers to the operator.
            resolved_plan = plan
        elif plan is not None or legacy_knobs_supplied(**legacy):
            resolved_plan = resolve_plan_argument(plan, **legacy)  # type: ignore[arg-type]

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return ApplyUDF(child, udf, arguments, alias, engine, plan=resolved_plan)

        self._steps.append(_build)
        return self

    def where_udf(
        self,
        udf: UDF | str,
        arguments: Sequence[str],
        alias: str,
        low: float,
        high: float,
        threshold: float = 0.1,
        plan: ExecutionPlan | str | None = None,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: str = "union",
        parallel_seed: int | None = None,
        async_inflight: int | None = None,
        pipeline_lookahead: int | None = None,
        transport: TransportSpec | None = None,
    ) -> "Query":
        """Evaluate a UDF under a range predicate and drop improbable tuples.

        The UDF output distribution is restricted to ``[low, high]``; tuples
        whose probability mass inside that interval is confidently below
        ``threshold`` are dropped by the online-filtering machinery.  The
        execution configuration (``plan=``, including the ``"auto"``
        spelling, or the legacy per-knob kwargs) and name-based ``udf``
        resolution behave exactly as on :meth:`apply_udf` (the predicate
        path keeps
        tuple-sequential filtering semantics, so the cross-tuple scheduler
        stands down and only within-tuple overlap applies).

        Returns
        -------
        Query
            ``self``, for fluent chaining.

        Raises
        ------
        QueryError
            For unknown argument attributes or an alias collision (at
            plan-build time), or — as
            :class:`~repro.exceptions.PlanError`, raised *here*, at the
            builder call — an invalid execution plan.
        """
        predicate = SelectionPredicate(low=low, high=high, threshold=threshold)
        # Eager resolution, exactly as in apply_udf: plan errors and the
        # deprecation warning surface at the user's call site, and an
        # unconfigured call defers to the engine's default plan.
        legacy = dict(
            batch_size=batch_size, workers=workers, merge=merge,
            parallel_seed=parallel_seed, async_inflight=async_inflight,
            pipeline_lookahead=pipeline_lookahead, transport=transport,
        )
        resolved_plan: ExecutionPlan | str | None = None
        if is_auto_plan(plan):
            # Deferred exactly as in apply_udf: the operator resolves
            # "auto" once the engine and input size are known.
            resolved_plan = plan
        elif plan is not None or legacy_knobs_supplied(**legacy):
            resolved_plan = resolve_plan_argument(plan, **legacy)  # type: ignore[arg-type]

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return SelectUDF(
                child, udf, arguments, alias, predicate, engine, plan=resolved_plan
            )

        self._steps.append(_build)
        return self

    def project(self, names: Sequence[str]) -> "Query":
        """Keep only the named attributes in the result."""

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return Project(child, names)

        self._steps.append(_build)
        return self

    # -- execution --------------------------------------------------------------------
    def plan(self, engine: UDFExecutionEngine) -> Operator:
        """Build the physical operator tree without executing it."""
        operator: Operator = Scan(self._relation)
        for step in self._steps:
            operator = step(operator, engine)
        return operator

    def run(self, engine: UDFExecutionEngine, name: str = "result") -> QueryResult:
        """Execute the query and materialise the result.

        Returns a :class:`~repro.engine.result.QueryResult` wrapping the
        materialised relation together with phase timings, per-tuple
        verdicts and the executed plan; it iterates/indexes exactly like
        the bare :class:`~repro.engine.tuples.Relation` it wraps.
        """
        return self.plan(engine).execute(name=name)
