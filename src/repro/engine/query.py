"""A small fluent query builder over uncertain relations.

This is the user-facing layer of the query-engine substrate.  It builds the
physical plans of the operator module for queries shaped like the paper's
Q1 and Q2::

    # Q1: Select G.objID, GalAge(G.redshift) From Galaxy G
    result = (
        Query(galaxy)
        .apply_udf(galage, ["redshift"], alias="galage")
        .project(["objID", "galage"])
        .run(engine)
    )

    # Q2-style: join + UDF + range predicate on the UDF output
    result = (
        Query(galaxy).alias("G1")
        .cross_join(galaxy, alias="G2", pair_filter=lambda t: t["G1.objID"] < t["G2.objID"])
        .where_udf(distance, ["G1.ra_offset", "G1.dec_offset", "G2.ra_offset", "G2.dec_offset"],
                   alias="dist", low=0.5, high=2.0, threshold=0.1)
        .apply_udf(comove_vol, ["G1.redshift", "G2.redshift"], alias="covol")
        .run(engine)
    )
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.filtering import SelectionPredicate
from repro.engine.executor import UDFExecutionEngine
from repro.engine.operators import (
    ApplyUDF,
    CrossJoin,
    Operator,
    Project,
    Scan,
    SelectUDF,
    SelectWhere,
)
from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import QueryError
from repro.udf.base import UDF


class Query:
    """Fluent builder that accumulates a plan of deferred operators."""

    def __init__(self, relation: Relation):
        self._relation = relation
        self._alias: str | None = None
        #: Deferred plan construction steps; each maps an Operator to the next.
        self._steps: list[Callable[[Operator, UDFExecutionEngine], Operator]] = []

    # -- plan-building steps ----------------------------------------------------------
    def alias(self, name: str) -> "Query":
        """Name this relation for use as a join prefix."""
        if not name:
            raise QueryError("alias must be non-empty")
        self._alias = name
        return self

    def cross_join(
        self,
        other: Relation,
        alias: str,
        pair_filter: Callable[[UncertainTuple], bool] | None = None,
    ) -> "Query":
        """Cartesian-join with another relation; attributes become prefixed."""
        left_alias = self._alias or self._relation.name
        if left_alias == alias:
            raise QueryError("join aliases must differ")

        def build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return CrossJoin(
                child,
                Scan(other),
                left_prefix=left_alias,
                right_prefix=alias,
                pair_filter=pair_filter,
            )

        self._steps.append(build)
        return self

    def where(self, predicate: Callable[[UncertainTuple], bool]) -> "Query":
        """Filter on certain attributes with an arbitrary Python predicate."""

        def build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return SelectWhere(child, predicate)

        self._steps.append(build)
        return self

    def apply_udf(
        self,
        udf: UDF,
        arguments: Sequence[str],
        alias: str,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: str = "union",
        parallel_seed: int | None = None,
    ) -> "Query":
        """Evaluate a UDF on each tuple and keep its output distribution.

        ``batch_size`` streams the input in chunks of that many tuples
        through the batched execution pipeline; ``None`` keeps the classic
        one-engine-call-per-tuple path.  ``workers`` additionally shards the
        input across a process pool
        (:class:`~repro.engine.parallel.ParallelExecutor`) — ``merge`` picks
        the training-point merge policy and ``parallel_seed`` fixes the
        per-shard random streams.
        """

        def build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return ApplyUDF(
                child, udf, arguments, alias, engine,
                batch_size=batch_size, workers=workers,
                merge=merge, parallel_seed=parallel_seed,  # type: ignore[arg-type]
            )

        self._steps.append(build)
        return self

    def where_udf(
        self,
        udf: UDF,
        arguments: Sequence[str],
        alias: str,
        low: float,
        high: float,
        threshold: float = 0.1,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: str = "union",
        parallel_seed: int | None = None,
    ) -> "Query":
        """Evaluate a UDF under a range predicate and drop improbable tuples."""
        predicate = SelectionPredicate(low=low, high=high, threshold=threshold)

        def build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return SelectUDF(
                child, udf, arguments, alias, predicate, engine,
                batch_size=batch_size, workers=workers,
                merge=merge, parallel_seed=parallel_seed,  # type: ignore[arg-type]
            )

        self._steps.append(build)
        return self

    def project(self, names: Sequence[str]) -> "Query":
        """Keep only the named attributes in the result."""

        def build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return Project(child, names)

        self._steps.append(build)
        return self

    # -- execution --------------------------------------------------------------------
    def plan(self, engine: UDFExecutionEngine) -> Operator:
        """Build the physical operator tree without executing it."""
        operator: Operator = Scan(self._relation)
        for step in self._steps:
            operator = step(operator, engine)
        return operator

    def run(self, engine: UDFExecutionEngine, name: str = "result") -> Relation:
        """Execute the query and materialise the result relation."""
        return self.plan(engine).execute(name=name)
