"""A small fluent query builder over uncertain relations.

This is the user-facing layer of the query-engine substrate.  It builds the
physical plans of the operator module for queries shaped like the paper's
Q1 and Q2::

    # Q1: Select G.objID, GalAge(G.redshift) From Galaxy G
    result = (
        Query(galaxy)
        .apply_udf(galage, ["redshift"], alias="galage")
        .project(["objID", "galage"])
        .run(engine)
    )

    # Q2-style: join + UDF + range predicate on the UDF output
    result = (
        Query(galaxy).alias("G1")
        .cross_join(galaxy, alias="G2", pair_filter=lambda t: t["G1.objID"] < t["G2.objID"])
        .where_udf(distance, ["G1.ra_offset", "G1.dec_offset", "G2.ra_offset", "G2.dec_offset"],
                   alias="dist", low=0.5, high=2.0, threshold=0.1)
        .apply_udf(comove_vol, ["G1.redshift", "G2.redshift"], alias="covol")
        .run(engine)
    )
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.filtering import SelectionPredicate
from repro.engine.executor import UDFExecutionEngine
from repro.engine.operators import (
    ApplyUDF,
    CrossJoin,
    Operator,
    Project,
    Scan,
    SelectUDF,
    SelectWhere,
)
from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import QueryError
from repro.udf.base import UDF


class Query:
    """Fluent builder that accumulates a plan of deferred operators."""

    def __init__(self, relation: Relation):
        self._relation = relation
        self._alias: str | None = None
        #: Deferred plan construction steps; each maps an Operator to the next.
        self._steps: list[Callable[[Operator, UDFExecutionEngine], Operator]] = []

    # -- plan-building steps ----------------------------------------------------------
    def alias(self, name: str) -> "Query":
        """Name this relation for use as a join prefix."""
        if not name:
            raise QueryError("alias must be non-empty")
        self._alias = name
        return self

    def cross_join(
        self,
        other: Relation,
        alias: str,
        pair_filter: Callable[[UncertainTuple], bool] | None = None,
    ) -> "Query":
        """Cartesian-join with another relation; attributes become prefixed."""
        left_alias = self._alias or self._relation.name
        if left_alias == alias:
            raise QueryError("join aliases must differ")

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return CrossJoin(
                child,
                Scan(other),
                left_prefix=left_alias,
                right_prefix=alias,
                pair_filter=pair_filter,
            )

        self._steps.append(_build)
        return self

    def where(self, predicate: Callable[[UncertainTuple], bool]) -> "Query":
        """Filter on certain attributes with an arbitrary Python predicate."""

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return SelectWhere(child, predicate)

        self._steps.append(_build)
        return self

    def apply_udf(
        self,
        udf: UDF,
        arguments: Sequence[str],
        alias: str,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: str = "union",
        parallel_seed: int | None = None,
        async_inflight: int | None = None,
        pipeline_lookahead: int | None = None,
    ) -> "Query":
        """Evaluate a UDF on each tuple and keep its output distribution.

        Parameters
        ----------
        udf:
            The black-box function to evaluate.
        arguments:
            Input attribute names forming the UDF's argument vector.
        alias:
            Name of the derived output attribute.
        batch_size:
            Streams the input in chunks of that many tuples through the
            batched execution pipeline; ``None`` keeps the classic
            one-engine-call-per-tuple path.
        workers:
            Additionally shards the input across a process pool
            (:class:`~repro.engine.parallel.ParallelExecutor`).
        merge:
            Training-point merge policy for sharded execution
            (``"discard" | "union" | "refit-threshold"``).
        parallel_seed:
            Fixes the per-shard random streams of sharded execution.
        async_inflight:
            Overlaps up to this many refinement-loop UDF calls through the
            asynchronous pipeline
            (:class:`~repro.engine.async_exec.AsyncRefinementExecutor`);
            with ``workers`` it applies inside each shard.  ``1`` is
            bit-identical to the serial batched path.
        pipeline_lookahead:
            Pipelines consecutive tuples through the cross-tuple scheduler
            (:class:`~repro.engine.pipeline.PipelinedExecutor`): while one
            tuple refines, the sampling, first inference and prefetched
            first UDF window of the next ``pipeline_lookahead - 1`` tuples
            already run.  Composes with ``async_inflight`` (the within-tuple
            window) and ``workers`` (applies inside each shard).  ``1`` is
            bit-identical to the serial batched path.

        Returns
        -------
        Query
            ``self``, for fluent chaining.

        Raises
        ------
        QueryError
            At plan-build time, for unknown argument attributes, an alias
            collision, or invalid executor knobs.
        """

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return ApplyUDF(
                child, udf, arguments, alias, engine,
                batch_size=batch_size, workers=workers,
                merge=merge, parallel_seed=parallel_seed,  # type: ignore[arg-type]
                async_inflight=async_inflight,
                pipeline_lookahead=pipeline_lookahead,
            )

        self._steps.append(_build)
        return self

    def where_udf(
        self,
        udf: UDF,
        arguments: Sequence[str],
        alias: str,
        low: float,
        high: float,
        threshold: float = 0.1,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: str = "union",
        parallel_seed: int | None = None,
        async_inflight: int | None = None,
        pipeline_lookahead: int | None = None,
    ) -> "Query":
        """Evaluate a UDF under a range predicate and drop improbable tuples.

        The UDF output distribution is restricted to ``[low, high]``; tuples
        whose probability mass inside that interval is confidently below
        ``threshold`` are dropped by the online-filtering machinery.  The
        executor knobs (``batch_size`` / ``workers`` / ``merge`` /
        ``parallel_seed`` / ``async_inflight`` / ``pipeline_lookahead``)
        behave exactly as on :meth:`apply_udf` (the predicate path keeps
        tuple-sequential filtering semantics, so the cross-tuple scheduler
        stands down and only within-tuple overlap applies).

        Returns
        -------
        Query
            ``self``, for fluent chaining.

        Raises
        ------
        QueryError
            At plan-build time, for unknown argument attributes, an alias
            collision, or invalid executor knobs.
        """
        predicate = SelectionPredicate(low=low, high=high, threshold=threshold)

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return SelectUDF(
                child, udf, arguments, alias, predicate, engine,
                batch_size=batch_size, workers=workers,
                merge=merge, parallel_seed=parallel_seed,  # type: ignore[arg-type]
                async_inflight=async_inflight,
                pipeline_lookahead=pipeline_lookahead,
            )

        self._steps.append(_build)
        return self

    def project(self, names: Sequence[str]) -> "Query":
        """Keep only the named attributes in the result."""

        def _build(child: Operator, engine: UDFExecutionEngine) -> Operator:
            return Project(child, names)

        self._steps.append(_build)
        return self

    # -- execution --------------------------------------------------------------------
    def plan(self, engine: UDFExecutionEngine) -> Operator:
        """Build the physical operator tree without executing it."""
        operator: Operator = Scan(self._relation)
        for step in self._steps:
            operator = step(operator, engine)
        return operator

    def run(self, engine: UDFExecutionEngine, name: str = "result") -> Relation:
        """Execute the query and materialise the result relation."""
        return self.plan(engine).execute(name=name)
