"""Relational schema for uncertain relations (substrate S14).

The data model follows the paper's running example: a relation such as
``Galaxy(objID, pos^p, redshift^p, ...)`` has ordinary (certain) attributes
and probabilistic (uncertain) attributes whose per-tuple values are
continuous or discrete distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from repro.exceptions import SchemaError


class AttributeKind(Enum):
    """Whether an attribute stores a plain value or a distribution."""

    CERTAIN = "certain"
    UNCERTAIN = "uncertain"


@dataclass(frozen=True)
class Attribute:
    """A named column of a relation."""

    name: str
    kind: AttributeKind = AttributeKind.CERTAIN
    #: Dimensionality of the attribute's value (uncertain positions may be 2-D).
    dimension: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.dimension <= 0:
            raise SchemaError("attribute dimension must be positive")

    @property
    def is_uncertain(self) -> bool:
        """Whether the attribute carries a probability distribution per tuple."""
        return self.kind is AttributeKind.UNCERTAIN


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes with unique names."""

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in schema: {names}")

    @staticmethod
    def of(attributes: Iterable[Attribute]) -> "Schema":
        """Build a schema from any iterable of attributes."""
        return Schema(tuple(attributes))

    def __contains__(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"unknown attribute {name!r}; schema has {self.names()}")

    def names(self) -> list[str]:
        """Attribute names in schema order."""
        return [a.name for a in self.attributes]

    def uncertain_names(self) -> list[str]:
        """Names of the uncertain attributes."""
        return [a.name for a in self.attributes if a.is_uncertain]

    def with_attribute(self, attribute: Attribute) -> "Schema":
        """New schema with one attribute appended."""
        return Schema(self.attributes + (attribute,))

    def project(self, names: Iterable[str]) -> "Schema":
        """New schema restricted to ``names`` (order follows ``names``)."""
        return Schema(tuple(self.attribute(n) for n in names))

    def prefixed(self, prefix: str) -> "Schema":
        """New schema with every attribute renamed ``prefix.name`` (for joins)."""
        return Schema(
            tuple(
                Attribute(
                    name=f"{prefix}.{a.name}",
                    kind=a.kind,
                    dimension=a.dimension,
                    description=a.description,
                )
                for a in self.attributes
            )
        )
