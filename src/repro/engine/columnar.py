"""Columnar uncertain-relation store (U-relations-style layout).

:class:`ColumnarRelation` is the column-oriented twin of
:class:`~repro.engine.tuples.Relation`:

* **certain attributes** live in one numpy *structured array* — one field
  per attribute, one record per tuple;
* **uncertain attributes** are stored succinctly per column as an
  :class:`~repro.distributions.columns.UncertainColumn` (family tag +
  ``(n, k)`` parameter block) when the column is homogeneous over a
  supported family, or as a plain object list otherwise (mixed families,
  joint distributions, empirical outputs, ``None`` for quarantined cells);
* **tuple state** — existence probabilities and per-tuple annotation dicts
  — is kept in parallel arrays/lists.

Distribution objects are hydrated lazily, only at the UDF boundary
(:meth:`ColumnarRelation.row` / iteration), so relational bookkeeping never
pays per-cell object costs.  ``from_relation`` / ``to_relation`` round-trip
bit-identically: hydration rebuilds exactly the parameters that were
encoded, and object-backed columns are carried by reference.

The store itself is representation only; the vectorised execution paths it
feeds (stacked sampling, stacked kernel algebra, batched envelope sorts)
are gated behind :func:`repro.distributions.columns.stacking_supported` so
the engine's determinism contract holds on every platform.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Union

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.columns import UncertainColumn, attempt_encode
from repro.engine.schema import Schema
from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import SchemaError

#: How one uncertain column is stored: succinctly, or as objects (``None``
#: marks a quarantined cell that never produced a distribution).
ColumnStore = Union[UncertainColumn, list]


class ColumnarRelation:
    """A named columnar collection of uncertain tuples sharing a schema."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        certain: np.ndarray,
        uncertain: dict[str, ColumnStore],
        existence: np.ndarray,
        annotations: list[dict[str, Any]],
    ):
        """Assemble a relation from pre-built column blocks (see ``from_relation``)."""
        n = int(certain.shape[0])
        for column_name, column in uncertain.items():
            if len(column) != n:
                raise SchemaError(
                    f"uncertain column {column_name!r} has {len(column)} rows, "
                    f"expected {n}"
                )
        if existence.shape != (n,) or len(annotations) != n:
            raise SchemaError("existence/annotations must align with the column blocks")
        self.name = name
        self.schema = schema
        self.certain = certain
        self.uncertain = uncertain
        self.existence = existence
        self.annotations = annotations

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarRelation":
        """Encode a tuple-store relation column by column.

        Certain attributes become structured-array fields (float64 when
        every value is numeric, object otherwise); each uncertain column is
        packed succinctly when :func:`~repro.distributions.columns
        .attempt_encode` recognises it and kept as an object list when not.
        """
        schema = relation.schema
        rows = list(relation)
        n = len(rows)
        certain_names = [a.name for a in schema if not a.is_uncertain]
        fields = []
        for attr_name in certain_names:
            values = [row[attr_name] for row in rows]
            # Pack numerically only when every value shares one scalar type,
            # so hydration rebuilds the exact Python value (a mixed int/float
            # column would silently promote ints on the round trip).
            kinds = {type(value) for value in values}
            try:
                if kinds <= {bool} or kinds <= {int} or kinds <= {float}:
                    block = np.asarray(values)
                else:
                    raise ValueError(f"attribute {attr_name!r} is not uniformly scalar")
            except (OverflowError, ValueError):
                block = np.empty(n, dtype=object)
                block[:] = values
            fields.append((attr_name, block))
        certain = np.zeros(n, dtype=[(name, block.dtype) for name, block in fields])
        for attr_name, block in fields:
            certain[attr_name] = block
        uncertain: dict[str, ColumnStore] = {}
        for attr_name in schema.uncertain_names():
            cells = [row[attr_name] for row in rows]
            encoded = attempt_encode(cells) if all(
                isinstance(c, Distribution) for c in cells
            ) else None
            uncertain[attr_name] = encoded if encoded is not None else cells
        return cls(
            name=relation.name,
            schema=schema,
            certain=certain,
            uncertain=uncertain,
            existence=np.array([row.existence_probability for row in rows]),
            annotations=[dict(row.annotations) for row in rows],
        )

    def to_relation(self) -> Relation:
        """Hydrate back into a tuple-store relation (the round trip)."""
        relation = Relation(name=self.name, schema=self.schema)
        relation.extend(self)
        return relation

    # -- row access (the hydration boundary) --------------------------------------
    def row(self, i: int) -> UncertainTuple:
        """Materialise tuple ``i``; distribution objects are built here."""
        if not 0 <= i < len(self):
            raise IndexError(f"row {i} out of range for {len(self)} tuples")
        values: dict[str, Any] = {}
        for attribute in self.schema:
            if attribute.is_uncertain:
                column = self.uncertain[attribute.name]
                values[attribute.name] = (
                    column.hydrate(i)
                    if isinstance(column, UncertainColumn)
                    else column[i]
                )
            else:
                value = self.certain[attribute.name][i]
                values[attribute.name] = (
                    value.item() if isinstance(value, np.generic) else value
                )
        return UncertainTuple(
            values=values,
            existence_probability=float(self.existence[i]),
            annotations=dict(self.annotations[i]),
        )

    def column(self, name: str) -> ColumnStore:
        """The stored block for one uncertain attribute."""
        if name not in self.uncertain:
            raise SchemaError(f"no uncertain column {name!r} in {self.name!r}")
        return self.uncertain[name]

    def hydrated_column(self, name: str) -> Sequence[Distribution]:
        """Distribution objects for one uncertain column, in tuple order."""
        column = self.column(name)
        if isinstance(column, UncertainColumn):
            return column.hydrate_all()
        return list(column)

    def __iter__(self) -> Iterator[UncertainTuple]:
        return (self.row(i) for i in range(len(self)))

    def __len__(self) -> int:
        return int(self.certain.shape[0])

    def __repr__(self) -> str:
        packed = sum(
            isinstance(c, UncertainColumn) for c in self.uncertain.values()
        )
        return (
            f"ColumnarRelation(name={self.name!r}, n_tuples={len(self)}, "
            f"packed_columns={packed}/{len(self.uncertain)})"
        )
