"""Physical query operators over uncertain relations (substrate S14).

The operators are iterator-style: each consumes a stream of
:class:`~repro.engine.tuples.UncertainTuple` and produces another stream.
They cover what queries Q1 and Q2 of the paper need:

* :class:`Scan`          — read a stored relation,
* :class:`Project`       — keep a subset of attributes,
* :class:`SelectWhere`   — filter on certain attributes with a plain predicate,
* :class:`CrossJoin`     — pair tuples of two inputs with prefixed names,
* :class:`ApplyUDF`      — evaluate a UDF on uncertain attributes, attaching
  the output distribution and its error bound to the tuple,
* :class:`SelectUDF`     — evaluate a UDF under a range predicate with online
  filtering, dropping low-probability tuples and recording the tuple
  existence probability of the survivors.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import fields
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.filtering import SelectionPredicate
from repro.distributions.empirical import EmpiricalDistribution
from repro.engine.batch import iter_batches, truncate_columns
from repro.engine.executor import UDFExecutionEngine
from repro.engine.parallel import MergePolicy, ParallelExecutor
from repro.engine.plan import ExecutionPlan, is_auto_plan, resolve_plan_argument
from repro.engine.result import QueryResult, classify_rows
from repro.engine.schema import Attribute, AttributeKind, Schema
from repro.engine.transport import TransportSpec
from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import QueryError
from repro.timing import PhaseTimings
from repro.udf.base import UDF


def legacy_knobs_supplied(**legacy) -> bool:
    """Whether any legacy per-knob kwarg was actually set.

    "Set" means different from the corresponding
    :class:`~repro.engine.plan.ExecutionPlan` field default (``None`` for
    most knobs, ``"union"`` for ``merge``) — the same rule
    :func:`~repro.engine.plan.resolve_plan_argument` applies when deciding
    whether to warn.  Shared by the operators and the query builder to
    decide when the engine's default plan may stand in.
    """
    defaults = {field.name: field.default for field in fields(ExecutionPlan)}
    return any(
        value is not None and value != defaults.get(name)
        for name, value in legacy.items()
    )


@contextmanager
def _installed_retry(udf: UDF, plan: ExecutionPlan) -> Iterator[None]:
    """Install ``plan.retry`` on the UDF for the duration of one operator scan.

    The operators drive their executors directly rather than through
    :meth:`~repro.engine.executor.UDFExecutionEngine.compute_with_plan`,
    so they must perform the same install/uninstall dance around the
    whole scan: the policy rides the UDF's evaluation chokepoints (and
    its pickled pool-worker copies), which is what makes the per-tuple,
    chunked and sharded iteration paths retry identically.
    """
    if plan.retry is None:
        yield
        return
    udf._install_retry_policy(plan.retry)
    try:
        yield
    finally:
        udf._install_retry_policy(None)


def _resolve_catalog_udf(udf: UDF | str) -> UDF:
    """Resolve a name-based UDF reference through the default catalog.

    The query surface accepts a plain string wherever it accepts a UDF —
    ``apply_udf("galage", ...)`` — resolved here against
    :func:`~repro.udf.catalog.default_catalog` (case-insensitive, like
    every catalog lookup).  A :class:`~repro.exceptions.UDFError` from the
    lookup names the registered alternatives.
    """
    if isinstance(udf, str):
        from repro.udf.catalog import default_catalog

        return default_catalog().get(udf)
    return udf


def _scan_relation_size(child: Operator) -> int | None:
    """Best-effort input cardinality for auto-planning: the first Scan's size.

    Walks the child tree for the first stored relation; joins and filters
    change the true cardinality, so this is a planning *hint* (it only
    caps the chunk size and gates cross-tuple lookahead), never a
    correctness input.
    """
    for node in child._tree_nodes():
        relation = getattr(node, "relation", None)
        if relation is not None:
            try:
                return len(relation)
            except TypeError:
                return None
    return None


def _plan_and_executors(
    plan: ExecutionPlan | str | None,
    engine: UDFExecutionEngine,
    udf: UDF | None = None,
    relation_size: int | None = None,
    **legacy,
) -> tuple[ExecutionPlan, ParallelExecutor | None, object | None]:
    """Shared plan/executor setup of :class:`ApplyUDF` and :class:`SelectUDF`.

    Resolves ``plan=``-or-legacy-kwargs to one validated plan, then the
    plan to its executor, split into the two shapes the operators
    iterate over: ``(plan, parallel, chunked)`` where ``parallel`` is a
    :class:`~repro.engine.parallel.ParallelExecutor` (whole-input fan-out)
    and ``chunked`` any chunk-wise executor (``None``/``None`` = the
    per-tuple path).

    When neither ``plan=`` nor any legacy knob was given, the engine's
    default plan (installed at engine construction, or by
    :meth:`~repro.engine.session.Session.submit`) applies — the seam that
    lets one plan configure a whole served query without threading it
    through every builder call.  The ``"auto"`` spelling — passed
    directly, or installed as the engine default — resolves here, where
    the UDF and the input size are both known, via
    :meth:`~repro.engine.plan.ExecutionPlan.auto`.
    """
    if plan is None and engine.plan is not None and not legacy_knobs_supplied(**legacy):
        plan = engine.plan
    if is_auto_plan(plan):
        plan = ExecutionPlan.auto(udf, relation_size, engine=engine)
    resolved = resolve_plan_argument(plan, warn_stacklevel=4, **legacy)
    executor = resolved.resolve(engine)
    if isinstance(executor, ParallelExecutor):
        return resolved, executor, None
    return resolved, None, executor


class Operator(abc.ABC):
    """A node of a physical query plan."""

    @abc.abstractmethod
    def schema(self) -> Schema:
        """Schema of the tuples this operator produces."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[UncertainTuple]:
        """Produce the output tuples."""

    def _tree_nodes(self) -> Iterator["Operator"]:
        """This operator and every descendant, preorder."""
        yield self
        for attr in ("child", "left", "right"):
            node = getattr(self, attr, None)
            if isinstance(node, Operator):
                yield from node._tree_nodes()

    def _tree_epsilon(self) -> float | None:
        """The accuracy requirement's epsilon of the first engine-bound
        node in the tree (``None`` for plain relational plans)."""
        for node in self._tree_nodes():
            engine = getattr(node, "engine", None)
            if engine is not None:
                return engine.requirement.epsilon
        return None

    def _tree_plan(self) -> ExecutionPlan | None:
        """The resolved plan of the first UDF node in the tree, if any."""
        for node in self._tree_nodes():
            plan = getattr(node, "plan", None)
            if isinstance(plan, ExecutionPlan):
                return plan
        return None

    def execute(self, name: str = "result") -> QueryResult:
        """Materialise the operator's output into a typed query result.

        Returns a :class:`~repro.engine.result.QueryResult` wrapping the
        relation (iteration, ``len``, attribute access all delegate to
        it, so pre-existing consumers of the bare relation keep working)
        plus the executed plan, wall-clock timings and one
        certain/possible :class:`~repro.engine.result.TupleVerdict` per
        row — classified against the accuracy requirement of the plan's
        engine, when the tree has one.
        """
        timings = PhaseTimings()
        result = Relation(name=name, schema=self.schema())
        with timings.measure("execute"):
            for row in self:
                result.insert(row)
        return QueryResult(
            result,
            plan=self._tree_plan(),
            timings=timings,
            verdicts=classify_rows(result.tuples, self._tree_epsilon()),
        )


class Scan(Operator):
    """Full scan of a stored relation."""

    def __init__(self, relation: Relation):
        self.relation = relation

    def schema(self) -> Schema:
        """Schema of the stored relation, unchanged."""
        return self.relation.schema

    def __iter__(self) -> Iterator[UncertainTuple]:
        return iter(self.relation)


class Project(Operator):
    """Keep only the named attributes (plus any derived annotations)."""

    def __init__(self, child: Operator, names: Sequence[str]):
        if not names:
            raise QueryError("projection requires at least one attribute")
        self.child = child
        self.names = list(names)
        for name in self.names:
            if name not in child.schema():
                raise QueryError(f"cannot project unknown attribute {name!r}")

    def schema(self) -> Schema:
        """The child schema restricted to the projected attributes."""
        return self.child.schema().project(self.names)

    def __iter__(self) -> Iterator[UncertainTuple]:
        for row in self.child:
            projected = {name: row[name] for name in self.names}
            out = UncertainTuple(
                values=projected,
                existence_probability=row.existence_probability,
                annotations=dict(row.annotations),
            )
            yield out


class SelectWhere(Operator):
    """Filter tuples with an arbitrary predicate over certain attributes."""

    def __init__(self, child: Operator, predicate: Callable[[UncertainTuple], bool]):
        self.child = child
        self.predicate = predicate

    def schema(self) -> Schema:
        """The child schema, unchanged (filtering drops tuples, not columns)."""
        return self.child.schema()

    def __iter__(self) -> Iterator[UncertainTuple]:
        for row in self.child:
            if self.predicate(row):
                yield row


class CrossJoin(Operator):
    """Cartesian product of two inputs with prefixed attribute names.

    Query Q2 joins ``Galaxy AS G1`` with ``Galaxy AS G2``; the prefixes
    reproduce that aliasing.  An optional ``pair_filter`` lets callers prune
    pairs cheaply on certain attributes (e.g. ``G1.objID < G2.objID``).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_prefix: str = "L",
        right_prefix: str = "R",
        pair_filter: Callable[[UncertainTuple], bool] | None = None,
    ):
        if left_prefix == right_prefix:
            raise QueryError("join prefixes must differ")
        self.left = left
        self.right = right
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix
        self.pair_filter = pair_filter

    def schema(self) -> Schema:
        """Both input schemas side by side, attribute names prefixed."""
        left_schema = self.left.schema().prefixed(self.left_prefix)
        right_schema = self.right.schema().prefixed(self.right_prefix)
        return Schema(left_schema.attributes + right_schema.attributes)

    def __iter__(self) -> Iterator[UncertainTuple]:
        right_rows = list(self.right)
        for left_row in self.left:
            for right_row in right_rows:
                merged = left_row.merged_with(right_row, self.left_prefix, self.right_prefix)
                if self.pair_filter is None or self.pair_filter(merged):
                    yield merged


class ApplyUDF(Operator):
    """Evaluate a UDF on each tuple, adding the output distribution as a column.

    The derived attribute stores the empirical output distribution; the
    claimed error bound is recorded in ``annotations[alias + "_error_bound"]``
    and the UDF cost in ``annotations[alias + "_udf_calls"]``.

    How the evaluation executes is described by one
    :class:`~repro.engine.plan.ExecutionPlan` (``plan=``): batching,
    sharding, overlapped refinement windows, cross-tuple pipelining and
    the evaluation transport, validated as a unit and resolved to the
    composed executor stack.  The per-knob kwargs (``batch_size`` /
    ``workers`` / ``merge`` / ``parallel_seed`` / ``async_inflight`` /
    ``pipeline_lookahead`` / ``transport``) remain as a deprecation shim
    that builds the same plan; passing both is a
    :class:`~repro.exceptions.PlanError`.
    """

    def __init__(
        self,
        child: Operator,
        udf: UDF | str,
        argument_names: Sequence[str],
        alias: str,
        engine: UDFExecutionEngine,
        plan: ExecutionPlan | str | None = None,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: MergePolicy = "union",
        parallel_seed: int | None = None,
        async_inflight: int | None = None,
        pipeline_lookahead: int | None = None,
        transport: TransportSpec | None = None,
    ):
        """Validate the UDF call against the child's schema and pick executors.

        ``udf`` may be a catalog name (resolved through
        :func:`~repro.udf.catalog.default_catalog`) and ``plan`` may be
        the ``"auto"`` spelling (resolved from the UDF's catalog profile
        and the scanned relation's size).

        Raises
        ------
        QueryError
            When ``argument_names`` is empty or references unknown
            attributes, when ``alias`` collides with an existing attribute,
            or (as :class:`~repro.exceptions.PlanError`) when the execution
            plan — explicit or built from the legacy kwargs — is invalid.
        """
        if not argument_names:
            raise QueryError("a UDF call needs at least one argument attribute")
        for name in argument_names:
            if name not in child.schema():
                raise QueryError(f"UDF argument {name!r} is not in the input schema")
        if alias in child.schema():
            raise QueryError(f"alias {alias!r} collides with an existing attribute")
        udf = _resolve_catalog_udf(udf)
        self.child = child
        self.udf = udf
        self.argument_names = list(argument_names)
        self.alias = alias
        self.engine = engine
        self.plan, self._parallel, self._batch = _plan_and_executors(
            plan, engine, udf=udf, relation_size=_scan_relation_size(child),
            batch_size=batch_size, workers=workers, merge=merge,
            parallel_seed=parallel_seed, async_inflight=async_inflight,
            pipeline_lookahead=pipeline_lookahead, transport=transport,
        )
        self.batch_size = self.plan.batch_size
        self.workers = self.plan.workers
        self.async_inflight = self.plan.async_inflight
        self.pipeline_lookahead = self.plan.pipeline_lookahead

    def schema(self) -> Schema:
        """The child schema plus the derived uncertain output attribute."""
        derived = Attribute(
            self.alias,
            AttributeKind.UNCERTAIN,
            description=f"{self.udf.name}({', '.join(self.argument_names)})",
        )
        return self.child.schema().with_attribute(derived)

    def _annotated(self, row: UncertainTuple, output) -> UncertainTuple:
        out = row.with_value(self.alias, output.distribution)
        out.annotations[f"{self.alias}_error_bound"] = output.error_bound
        out.annotations[f"{self.alias}_udf_calls"] = output.udf_calls
        out.annotations[f"{self.alias}_charged_time"] = output.charged_time
        if getattr(output, "failed", False):
            # Quarantined evaluation: the row keeps the last distribution /
            # bound OLGAPRO had (``None`` / NaN when it failed before any
            # existed) and the annotation routes it to a ``degraded``
            # verdict instead of aborting the query.
            out.annotations[f"{self.alias}_degraded"] = True
        return out

    def __iter__(self) -> Iterator[UncertainTuple]:
        with _installed_retry(self.udf, self.plan):
            if self._parallel is not None:
                # Sharding needs the whole input: materialise, fan out, re-attach.
                rows = list(self.child)
                distributions = [row.input_distribution(self.argument_names) for row in rows]
                outputs = self._parallel.compute_batch(self.udf, distributions)
                for row, output in zip(rows, outputs):
                    yield self._annotated(row, output)
                return
            if self._batch is None:
                for row in self.child:
                    input_distribution = row.input_distribution(self.argument_names)
                    output = self.engine.compute(self.udf, input_distribution)
                    yield self._annotated(row, output)
                return
            for rows in iter_batches(self.child, self._batch.batch_size):
                distributions = [row.input_distribution(self.argument_names) for row in rows]
                outputs = self._batch.compute_batch(self.udf, distributions)
                for row, output in zip(rows, outputs):
                    yield self._annotated(row, output)


class SelectUDF(Operator):
    """Evaluate a UDF under a range predicate and filter improbable tuples.

    Implements the WHERE clause of query Q2: the UDF output distribution is
    restricted to ``[low, high]``, the tuple existence probability becomes
    the probability mass inside that interval, and tuples whose existence
    probability is (confidently) below the threshold are dropped using the
    online-filtering machinery.
    """

    def __init__(
        self,
        child: Operator,
        udf: UDF | str,
        argument_names: Sequence[str],
        alias: str,
        predicate: SelectionPredicate,
        engine: UDFExecutionEngine,
        plan: ExecutionPlan | str | None = None,
        batch_size: int | None = None,
        workers: int | None = None,
        merge: MergePolicy = "union",
        parallel_seed: int | None = None,
        async_inflight: int | None = None,
        pipeline_lookahead: int | None = None,
        transport: TransportSpec | None = None,
    ):
        """Validate the predicated UDF call and pick executors.

        The execution configuration (``plan=``, including the ``"auto"``
        spelling, or the legacy per-knob kwargs) and name-based ``udf``
        resolution behave exactly as on :class:`ApplyUDF`.

        Raises
        ------
        QueryError
            When ``argument_names`` references unknown attributes, when
            ``alias`` collides with an existing attribute, or (as
            :class:`~repro.exceptions.PlanError`) when the execution plan
            is invalid.
        """
        for name in argument_names:
            if name not in child.schema():
                raise QueryError(f"UDF argument {name!r} is not in the input schema")
        if alias in child.schema():
            raise QueryError(f"alias {alias!r} collides with an existing attribute")
        udf = _resolve_catalog_udf(udf)
        self.child = child
        self.udf = udf
        self.argument_names = list(argument_names)
        self.alias = alias
        self.predicate = predicate
        self.engine = engine
        self.plan, self._parallel, self._batch = _plan_and_executors(
            plan, engine, udf=udf, relation_size=_scan_relation_size(child),
            batch_size=batch_size, workers=workers, merge=merge,
            parallel_seed=parallel_seed, async_inflight=async_inflight,
            pipeline_lookahead=pipeline_lookahead, transport=transport,
        )
        self.batch_size = self.plan.batch_size
        self.workers = self.plan.workers
        self.async_inflight = self.plan.async_inflight
        self.pipeline_lookahead = self.plan.pipeline_lookahead

    def schema(self) -> Schema:
        """The child schema plus the predicate-restricted output attribute."""
        derived = Attribute(
            self.alias,
            AttributeKind.UNCERTAIN,
            description=(
                f"{self.udf.name}({', '.join(self.argument_names)}) restricted to "
                f"[{self.predicate.low}, {self.predicate.high}]"
            ),
        )
        return self.child.schema().with_attribute(derived)

    def _filtered(self, row: UncertainTuple, output, truncation=None) -> UncertainTuple | None:
        if getattr(output, "failed", False):
            # Quarantined evaluation: the predicate could not be decided, so
            # the tuple is *retained* as degraded — online filtering only
            # excludes tuples it has confidently ruled out, and a failed
            # evaluation rules out nothing.
            out = row.with_value(self.alias, output.distribution)
            out.annotations[f"{self.alias}_error_bound"] = output.error_bound
            out.annotations[f"{self.alias}_udf_calls"] = output.udf_calls
            out.annotations[f"{self.alias}_charged_time"] = output.charged_time
            out.annotations[f"{self.alias}_degraded"] = True
            return out
        if output.dropped or output.distribution is None:
            return None
        if truncation is None:
            truncation = output.distribution.truncate(self.predicate.low, self.predicate.high)
        existence = row.existence_probability * truncation.existence_probability
        if truncation.distribution is None or existence < self.predicate.threshold:
            return None
        out = row.with_value(self.alias, truncation.distribution)
        out.existence_probability = existence
        out.annotations[f"{self.alias}_error_bound"] = output.error_bound
        out.annotations[f"{self.alias}_udf_calls"] = output.udf_calls
        out.annotations[f"{self.alias}_charged_time"] = output.charged_time
        return out

    def _chunk_truncations(self, outputs) -> list:
        """Columnar predicate kernel: truncate a chunk's ECDFs in one block.

        Returns one entry per output — a precomputed
        :class:`~repro.distributions.empirical.TruncationResult` for rows
        the column kernel handled, ``None`` where :meth:`_filtered` should
        keep its scalar path (quarantined / dropped / non-empirical rows, or
        tuple storage).  The block truncation is bit-identical to the scalar
        calls, so the columnar plan changes no filtering decision.
        """
        if not (self._batch is not None and getattr(self._batch, "columnar", False)):
            return [None] * len(outputs)
        eligible = [
            i
            for i, output in enumerate(outputs)
            if not getattr(output, "failed", False)
            and not output.dropped
            and isinstance(output.distribution, EmpiricalDistribution)
        ]
        truncations: list = [None] * len(outputs)
        if eligible:
            block = truncate_columns(
                [outputs[i].distribution for i in eligible],
                self.predicate.low,
                self.predicate.high,
            )
            for i, truncation in zip(eligible, block):
                truncations[i] = truncation
        return truncations

    def __iter__(self) -> Iterator[UncertainTuple]:
        with _installed_retry(self.udf, self.plan):
            if self._parallel is not None:
                rows = list(self.child)
                distributions = [row.input_distribution(self.argument_names) for row in rows]
                outputs = self._parallel.compute_batch_with_predicate(
                    self.udf, distributions, self.predicate
                )
                for row, output in zip(rows, outputs):
                    survivor = self._filtered(row, output)
                    if survivor is not None:
                        yield survivor
                return
            if self._batch is None:
                for row in self.child:
                    input_distribution = row.input_distribution(self.argument_names)
                    output = self.engine.compute_with_predicate(
                        self.udf, input_distribution, self.predicate
                    )
                    survivor = self._filtered(row, output)
                    if survivor is not None:
                        yield survivor
                return
            for rows in iter_batches(self.child, self._batch.batch_size):
                distributions = [row.input_distribution(self.argument_names) for row in rows]
                outputs = self._batch.compute_batch_with_predicate(
                    self.udf, distributions, self.predicate
                )
                truncations = self._chunk_truncations(outputs)
                for row, output, truncation in zip(rows, outputs, truncations):
                    survivor = self._filtered(row, output, truncation)
                    if survivor is not None:
                        yield survivor


def materialize(rows: Iterable[UncertainTuple], schema: Schema, name: str = "result") -> Relation:
    """Collect an operator's output stream into a relation."""
    relation = Relation(name=name, schema=schema)
    for row in rows:
        relation.insert(row)
    return relation
