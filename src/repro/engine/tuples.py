"""Uncertain tuples and relations (substrate S14).

An :class:`UncertainTuple` maps attribute names to either plain Python
values (certain attributes) or :class:`~repro.distributions.base.Distribution`
objects (uncertain attributes).  The tuple also carries an existence
probability, which starts at 1 and is reduced by probabilistic selection
predicates downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.distributions.base import Distribution
from repro.distributions.multivariate import IndependentJoint, PointMass
from repro.engine.schema import Schema
from repro.exceptions import SchemaError


@dataclass
class UncertainTuple:
    """One row of an uncertain relation."""

    values: dict[str, Any]
    #: Probability that this tuple exists at all (reduced by filtering).
    existence_probability: float = 1.0
    #: Arbitrary per-tuple annotations added by operators (e.g. error bounds).
    annotations: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        if name not in self.values:
            raise SchemaError(f"tuple has no attribute {name!r}")
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def is_uncertain(self, name: str) -> bool:
        """Whether the value stored under ``name`` is a distribution."""
        return isinstance(self[name], Distribution)

    def input_distribution(self, names: Sequence[str]) -> Distribution:
        """Joint distribution of the referenced attributes, in order.

        Certain attributes become point masses so UDF argument lists can mix
        uncertain and constant arguments (as ``ComoveVol(z1, z2, AREA)`` does).
        """
        if not names:
            raise SchemaError("at least one attribute must be referenced")
        components: list[Distribution] = []
        for name in names:
            value = self[name]
            if isinstance(value, Distribution):
                components.append(value)
            else:
                components.append(PointMass(float(value)))
        if len(components) == 1:
            return components[0]
        return IndependentJoint(components)

    def merged_with(self, other: "UncertainTuple", prefix_self: str, prefix_other: str) -> "UncertainTuple":
        """Combine two tuples into one with prefixed attribute names (joins)."""
        merged = {f"{prefix_self}.{k}": v for k, v in self.values.items()}
        merged.update({f"{prefix_other}.{k}": v for k, v in other.values.items()})
        return UncertainTuple(
            values=merged,
            existence_probability=self.existence_probability * other.existence_probability,
        )

    def with_value(self, name: str, value: Any) -> "UncertainTuple":
        """Copy of the tuple with one additional / replaced attribute."""
        new_values = dict(self.values)
        new_values[name] = value
        return UncertainTuple(
            values=new_values,
            existence_probability=self.existence_probability,
            annotations=dict(self.annotations),
        )


@dataclass
class Relation:
    """A named collection of uncertain tuples sharing a schema."""

    name: str
    schema: Schema
    tuples: list[UncertainTuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        for row in self.tuples:
            self._validate(row)

    def _validate(self, row: UncertainTuple) -> None:
        # ``None`` is allowed for an uncertain attribute: it means the value
        # is unavailable — a quarantined (degraded) UDF evaluation that never
        # produced a distribution.  Such rows carry a ``<alias>_degraded``
        # annotation from the UDF operators.
        for attribute in self.schema:
            if attribute.name not in row:
                raise SchemaError(
                    f"tuple {row.values} is missing attribute {attribute.name!r}"
                )
            value = row[attribute.name]
            if (
                attribute.is_uncertain
                and value is not None
                and not isinstance(value, Distribution)
            ):
                raise SchemaError(
                    f"attribute {attribute.name!r} is declared uncertain but the "
                    f"tuple stores a plain value"
                )

    def insert(self, row: UncertainTuple) -> None:
        """Append a tuple after validating it against the schema."""
        self._validate(row)
        self.tuples.append(row)

    def extend(self, rows: Iterable[UncertainTuple]) -> None:
        """Append many tuples."""
        for row in rows:
            self.insert(row)

    def to_columnar(self):
        """Encode into a :class:`~repro.engine.columnar.ColumnarRelation`.

        The column-oriented twin of this store: certain attributes in one
        structured array, homogeneous uncertain columns packed succinctly,
        distribution objects rebuilt lazily at the UDF boundary.
        ``to_columnar().to_relation()`` round-trips bit-identically.
        """
        from repro.engine.columnar import ColumnarRelation

        return ColumnarRelation.from_relation(self)

    def __iter__(self) -> Iterator[UncertainTuple]:
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        return f"Relation(name={self.name!r}, n_tuples={len(self.tuples)})"
