"""Chaos transport: deterministic fault injection at the transport seam.

:class:`FaultInjectingTransport` wraps any real
:class:`~repro.engine.transport.EvaluationTransport` and injects
:class:`~repro.exceptions.TransientUDFError` failures into the submission
path, driven by the same replayable
:class:`~repro.udf.faults.FaultSchedule` machinery the UDF-layer injectors
use.  Where the UDF wrappers fail *inside*
the retry loop, this transport models an unreliable carrier — the network
hop between the engine and the black box — and applies the installed
:class:`~repro.udf.retry.RetryPolicy` right at the seam: a streak of
scheduled failures shorter than the policy's attempt cap is absorbed
(consuming retry budget) and the evaluation is delegated to the wrapped
transport, so the returned value — and therefore the whole run — is
bit-identical to a fault-free run; a streak that exhausts the attempts or
the budget surfaces as a failed future carrying the typed error, exactly
as a terminal transient failure from the UDF layer would.

The injected backoff delays are *not* slept: they are a deterministic
function of the attempt number (see
:meth:`~repro.udf.retry.RetryPolicy.delay_for`), so skipping them changes
no values and keeps chaos runs fast.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import List, Optional

import numpy as np

from repro.engine.transport import (
    DEFAULT_TRANSPORT,
    EvaluationTransport,
    TransportSpec,
    make_transport,
)
from repro.exceptions import TransientUDFError
from repro.udf.base import UDF
from repro.udf.faults import FaultSchedule, point_key


class FaultInjectingTransport(EvaluationTransport):
    """An unreliable carrier around a real transport, for chaos testing.

    Parameters
    ----------
    schedule:
        The deterministic failure schedule.  Shared with the caller so a
        test can assert faults actually fired
        (:attr:`~repro.udf.faults.FaultSchedule.injected_failures`).
    inner:
        The transport that carries the evaluations that survive injection
        — a registry name or an instance; defaults to the engine's default
        (``"threads"``).

    Notes
    -----
    Lifecycle (``open``/``close``/``session``), pickling, and UDF
    compatibility all delegate to the wrapped transport, so the chaos
    wrapper composes with the executors exactly like the transport it
    wraps — including the close-on-every-exit-path guarantee.
    """

    name = "fault-injecting"

    def __init__(
        self, schedule: FaultSchedule, inner: TransportSpec = DEFAULT_TRANSPORT
    ) -> None:
        self.schedule = schedule
        self._inner = make_transport(inner)

    @property
    def inner(self) -> EvaluationTransport:
        """The wrapped transport that carries surviving evaluations."""
        return self._inner

    def accepts(self, udf: UDF) -> None:
        """Delegate compatibility to the wrapped transport."""
        self._inner.accepts(udf)

    def open(self, max_workers: int, label: str = "udf") -> None:
        """Open the wrapped transport."""
        self._inner.open(max_workers, label)

    def close(self) -> None:
        """Close the wrapped transport (joining every thread it started)."""
        self._inner.close()

    def drain(self, futures: List[Future], timeout: Optional[float] = None) -> None:
        """Drain through the wrapped transport's settle machinery."""
        self._inner.drain(futures, timeout)

    def submit_rows(self, udf: UDF, X: np.ndarray) -> List[Future]:
        """Inject scheduled failures per row, delegating the survivors.

        For each row, the schedule's streak of consecutive failures is
        consumed up to the retry policy's attempt cap.  A streak the
        policy can absorb spends one budgeted retry per failure and the
        row rides the wrapped transport (same value as a fault-free run);
        otherwise the row's future fails with a typed
        :class:`~repro.exceptions.TransientUDFError` naming the point and
        what was exhausted, and the engine's quarantine (or the caller)
        takes over.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        policy = getattr(udf, "_retry_policy", None)
        allowed = 1 if policy is None else int(policy.max_attempts)
        futures: List[Future] = []
        for row in X:
            failures = self.schedule.consume_failures(point_key(row), limit=allowed)
            granted = 0
            while granted < failures and udf._consume_retry():
                granted += 1
            if failures >= allowed or granted < failures:
                reason = (
                    "retry budget exhausted"
                    if failures < allowed
                    else f"all {allowed} attempt(s) failed"
                )
                failed: Future = Future()
                failed.set_exception(
                    TransientUDFError(
                        f"{udf.name}: injected transport fault at {row!r}: {reason}"
                    )
                )
                futures.append(failed)
            else:
                futures.extend(self._inner.submit_rows(udf, row.reshape(1, -1)))
        return futures
