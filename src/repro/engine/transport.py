"""Pluggable UDF evaluation transports for the refinement executors.

The overlapped execution layers (:mod:`repro.engine.async_exec`,
:mod:`repro.engine.pipeline`) treat the UDF as a black box whose *call
latency* dominates — precisely the regime where **how** an evaluation is
carried to the black box should be a separate, swappable layer.  Before
this module, both drivers hand-wired a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` (duplicated creation,
sizing and shutdown logic); a natively-async UDF (an HTTP service, an
``asyncio``-based simulator) had no first-class path at all.

:class:`EvaluationTransport` is that seam.  A transport owns the resource
an evaluation rides on (nothing, a thread pool, an event loop thread) and
exposes one primitive — :meth:`~EvaluationTransport.submit_rows`, returning
one :class:`~concurrent.futures.Future` per input row, **in row order** —
plus an explicit :meth:`~EvaluationTransport.open` /
:meth:`~EvaluationTransport.close` lifecycle.  Everything above the
transport (the window drivers, the speculative value pool, the fence and
rollback machinery, charge accounting) consumes futures by submission
index, so the determinism contracts of the async and pipelined executors
carry over bit for bit regardless of the transport in use.

Four transports ship:

* :class:`SerialTransport` — evaluates inline on the calling thread and
  returns already-resolved futures.  No concurrency, no threads; useful as
  a debugging baseline and as the explicit "do not overlap" spelling.
* :class:`ThreadPoolTransport` — the extracted thread-pool logic the
  async and pipeline drivers previously each owned: a bounded pool, rows
  submitted through :meth:`~repro.udf.base.UDF.submit_rows` (which carries
  the in-flight gauge and charge accounting).
* :class:`AsyncioTransport` — an event loop running on a dedicated
  (non-daemon, always-joined) thread; rows of an
  :class:`~repro.udf.base.AsyncUDF` are scheduled as coroutines, so a
  window of ``k`` awaited latencies costs roughly one.  Blocking callables
  would stall the loop, so this transport requires an ``AsyncUDF``.
* :class:`SubprocessPoolTransport` — the out-of-process evaluation
  backend: each row is shipped (as a pickled UDF copy) to a bounded
  process pool and the worker's charge delta is folded back into the
  parent-side UDF, so the same query can target in-process, thread,
  event-loop or out-of-process evaluation by naming a transport.

Lifecycle and safety contract
-----------------------------
Transports are **specs until opened**: constructing one allocates nothing,
:meth:`~EvaluationTransport.open` allocates the live resource, and
:meth:`~EvaluationTransport.close` releases it — joining every thread the
transport started, including the event loop thread, so a failed query
(:class:`~repro.exceptions.QueryError` mid-computation) never leaks
non-daemon threads.  The executors drive this through
:meth:`~EvaluationTransport.session`, whose ``finally`` closes on every
exit path.  Pickling a transport (e.g. inside an engine snapshot shipped
to a pool worker) drops the live resource: the copy arrives closed and can
be opened fresh in its new process, and the original keeps running.
"""

from __future__ import annotations

import abc
import asyncio
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager
from functools import partial
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import PlanError, QueryError, TransportDrainTimeoutError
from repro.udf.base import UDF, AsyncUDF


class EvaluationTransport(abc.ABC):
    """How a refinement window's UDF evaluations reach the black box.

    Subclasses implement the three lifecycle/submission primitives; the
    base class provides the :meth:`session` context manager the executors
    use, pickling that drops live resources, and the UDF-compatibility
    check.  A transport instance serves one computation at a time (the
    executors open it per compute call), but is reusable: ``open`` after
    ``close`` starts a fresh resource.
    """

    #: Registry name of the transport (``"serial"`` / ``"threads"`` /
    #: ``"asyncio"``); used by :func:`make_transport` and by the parallel
    #: layer, which ships the *name* (never a live transport) to workers.
    name: str = "abstract"

    #: Seconds :meth:`drain` (and the asyncio transport's close-time drain)
    #: waits for outstanding evaluations before abandoning them; generous,
    #: because exceeding it means a black box is hung, and waiting forever
    #: would turn a query failure into a process hang.
    DRAIN_TIMEOUT = 60.0

    @abc.abstractmethod
    def open(self, max_workers: int, label: str = "udf") -> None:
        """Allocate the live evaluation resource.

        Parameters
        ----------
        max_workers:
            Concurrency the resource should sustain (pool width; advisory
            for transports without a fixed width).
        label:
            Human-readable tag woven into thread names so leaked-thread
            regressions are attributable.

        Raises
        ------
        QueryError
            When the transport is already open.
        """

    @abc.abstractmethod
    def submit_rows(self, udf: UDF, X: np.ndarray) -> List[Future]:
        """Dispatch one evaluation per row of ``X``.

        Returns one future per row **in row order**; completion order is
        transport-specific, so callers needing determinism must consume by
        index (exactly the contract of
        :meth:`~repro.udf.base.UDF.submit_rows`).  Charge accounting and
        the in-flight gauge of ``udf`` are maintained by the transport.

        Raises
        ------
        QueryError
            When the transport is not open, or ``udf`` is incompatible
            (see :meth:`accepts`).
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Release the live resource, joining every thread it started.

        Idempotent: closing a never-opened (or already-closed) transport
        is a no-op.  After ``close`` returns, no thread created by this
        transport is alive.
        """

    def drain(self, futures: List[Future], timeout: Optional[float] = None) -> None:
        """Wait out every future, swallowing failures (the settle step).

        An evaluation that was submitted must complete — and charge —
        before its window finishes, whether its result was absorbed or
        discarded; a discarded speculation's failure is irrelevant
        (serially the call would never have happened).  The base
        implementation waits in submission order; transports with their
        own settle machinery may override.

        The wait is bounded by ``timeout`` (default :attr:`DRAIN_TIMEOUT`)
        across the *whole* batch: a hung black box must not turn a drain
        into a process hang.  The raw :class:`concurrent.futures
        .TimeoutError` never escapes — it is wrapped in a typed
        :class:`~repro.exceptions.TransportDrainTimeoutError` naming this
        transport and the elapsed deadline, and the executor's session
        still closes the transport on that exit path (the pool is torn
        down; only the stuck evaluations are abandoned).

        Raises
        ------
        TransportDrainTimeoutError
            When outstanding evaluations remain after the deadline.
        """
        deadline_s = self.DRAIN_TIMEOUT if timeout is None else float(timeout)
        deadline = time.monotonic() + deadline_s
        for future in futures:
            remaining = deadline - time.monotonic()
            try:
                future.exception(timeout=max(0.0, remaining))
            except FuturesTimeoutError as exc:
                raise TransportDrainTimeoutError(
                    f"{self.name} transport drain exceeded its {deadline_s:g}s "
                    "deadline with evaluations still outstanding; abandoning "
                    "the stuck black-box call(s) — the transport itself is "
                    "still torn down by the executor's close-on-every-exit-"
                    "path session"
                ) from exc

    def accepts(self, udf: UDF) -> None:
        """Raise :class:`QueryError` when ``udf`` cannot ride this transport.

        The base implementation accepts every UDF; transports with
        stronger requirements (``asyncio`` needs a natively-async UDF)
        override this so executors can fail fast, before any resource is
        allocated or any tuple is computed.
        """
        del udf

    @contextmanager
    def session(self, max_workers: int, label: str = "udf") -> Iterator["EvaluationTransport"]:
        """``open`` on entry, ``close`` on *every* exit path.

        This is the shutdown guarantee of the bugfix contract: a
        :class:`~repro.exceptions.QueryError` (or any other exception)
        escaping the computation still runs ``close``, so no pool or
        event-loop thread outlives a failed query.
        """
        self.open(max_workers, label)
        try:
            yield self
        finally:
            self.close()

    # -- pickling -----------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Drop live resources: a pickled transport arrives closed.

        Pools, event loops and threads are process-local; shipping a
        transport inside an engine snapshot must neither fail nor tear
        down the original's live resource.  Subclasses list their live
        attributes in :attr:`_live_attrs`.
        """
        state = dict(self.__dict__)
        for attr in self._live_attrs():
            state[attr] = None
        return state

    def _live_attrs(self) -> Tuple[str, ...]:
        """Names of process-local attributes dropped on pickling."""
        return ()


class SerialTransport(EvaluationTransport):
    """Inline evaluation on the calling thread; futures arrive resolved.

    The degenerate transport: no concurrency, no allocated resource.  A
    window "submitted" through it evaluates row by row, synchronously, so
    it is only legal where no overlap is requested (the planner enforces
    this) — its value is as an explicit spelling of "serial" and as a
    bisection tool when debugging a transport-dependent difference.
    """

    name = "serial"

    def open(self, max_workers: int, label: str = "udf") -> None:
        """Nothing to allocate; parameters are accepted for uniformity."""
        del max_workers, label

    def submit_rows(self, udf: UDF, X: np.ndarray) -> List[Future]:
        """Evaluate each row immediately; return completed futures.

        The in-flight gauge is bracketed around each inline call (peaking
        at one, by construction) so gauge-based instrumentation reads
        consistently across carriers, per the transport contract.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        futures: List[Future] = []
        for row in X:
            future: Future = Future()
            udf._enter_flight()
            try:
                future.set_result(udf(row))
            except Exception as exc:  # noqa: BLE001 - delivered via the future
                future.set_exception(exc)
            finally:
                udf._exit_flight()
            futures.append(future)
        return futures

    def close(self) -> None:
        """Nothing to release."""


class ThreadPoolTransport(EvaluationTransport):
    """Bounded thread pool carrying blocking black-box calls.

    The default transport, extracted from the (previously duplicated)
    pool-creation logic of :class:`~repro.engine.async_exec
    .AsyncRefinementExecutor` and :class:`~repro.engine.pipeline
    .PipelinedExecutor`.  Submission delegates to
    :meth:`~repro.udf.base.UDF.submit_rows`, which owns the in-flight
    gauge and thread-safe charge accounting.
    """

    name = "threads"

    def __init__(self) -> None:
        """Create a closed transport (the pool is allocated by ``open``)."""
        self._pool: Optional[ThreadPoolExecutor] = None

    def open(self, max_workers: int, label: str = "udf") -> None:
        """Start a bounded pool named after the UDF being served."""
        if self._pool is not None:
            raise QueryError("thread-pool transport is already open")
        if max_workers < 1:
            raise QueryError(f"max_workers must be positive, got {max_workers}")
        self._pool = ThreadPoolExecutor(
            max_workers=int(max_workers), thread_name_prefix=f"udf-{label}"
        )

    def submit_rows(self, udf: UDF, X: np.ndarray) -> List[Future]:
        """One pool task per row, through the UDF's gauged submission path."""
        if self._pool is None:
            raise QueryError("thread-pool transport is not open")
        return udf.submit_rows(self._pool, X)

    def close(self) -> None:
        """Shut the pool down, waiting out (and thereby joining) its workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _live_attrs(self) -> Tuple[str, ...]:
        return ("_pool",)


class AsyncioTransport(EvaluationTransport):
    """Event-loop transport for natively-async UDFs.

    ``open`` starts one event loop on a dedicated **non-daemon** thread;
    ``submit_rows`` schedules each row as a coroutine via
    :func:`asyncio.run_coroutine_threadsafe`, so the returned
    :class:`~concurrent.futures.Future` objects compose with the window
    drivers exactly like pool futures do.  A window of ``k`` rows awaits
    its latencies concurrently on the loop — the asyncio analogue of ``k``
    pool threads sleeping in the black box, without the threads.

    Charge accounting and the in-flight gauge are maintained per row: the
    gauge increments at submission and decrements when the coroutine
    settles, and each completed call charges its own awaited duration —
    the same semantics the thread transport inherits from
    :meth:`~repro.udf.base.UDF.submit_rows`.

    ``close`` drains every coroutine still pending (their charges must
    land; failures of discarded speculation are delivered through their
    futures, never raised here), stops the loop, and joins the loop
    thread — the no-leaked-threads half of the shutdown contract.
    """

    name = "asyncio"

    def __init__(self) -> None:
        """Create a closed transport (the loop is started by ``open``)."""
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def accepts(self, udf: UDF) -> None:
        """Only :class:`~repro.udf.base.AsyncUDF` may ride the event loop.

        A blocking callable scheduled on the loop would serialise every
        "concurrent" evaluation behind itself — strictly worse than the
        thread transport — so it is rejected up front with the fix spelled
        out.
        """
        if not isinstance(udf, AsyncUDF):
            raise QueryError(
                f"the asyncio transport requires a natively-async UDF, but "
                f"{udf.name!r} is a blocking {type(udf).__name__}; wrap an "
                "async implementation in repro.udf.base.AsyncUDF, or use the "
                "'threads' transport for blocking black boxes"
            )

    def open(self, max_workers: int, label: str = "udf") -> None:
        """Start the event loop thread (``max_workers`` is advisory)."""
        del max_workers  # coroutine concurrency is bounded by the window
        if self._loop is not None:
            raise QueryError("asyncio transport is already open")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"udf-asyncio-{label}",
            daemon=False,
        )
        self._thread.start()

    def submit_rows(self, udf: UDF, X: np.ndarray) -> List[Future]:
        """Schedule one coroutine per row; futures in row order."""
        self.accepts(udf)
        if self._loop is None:
            raise QueryError("asyncio transport is not open")
        assert isinstance(udf, AsyncUDF)  # narrowed by accepts()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        futures: List[Future] = []
        for row in X:
            udf._enter_flight()
            try:
                futures.append(
                    asyncio.run_coroutine_threadsafe(
                        self._evaluate_tracked(udf, row), self._loop
                    )
                )
            except BaseException:
                udf._exit_flight()
                raise
        return futures

    @staticmethod
    async def _evaluate_tracked(udf: AsyncUDF, row: np.ndarray) -> float:
        """One row through the async evaluation path, gauge-bracketed."""
        try:
            return await udf.evaluate_async(row)
        finally:
            udf._exit_flight()

    def close(self) -> None:
        """Drain pending coroutines, stop the loop, join the loop thread."""
        loop, thread = self._loop, self._thread
        self._loop = None
        self._thread = None
        if loop is None:
            return
        try:
            drain: Future = asyncio.run_coroutine_threadsafe(self._drain(), loop)
            drain.result(timeout=self.DRAIN_TIMEOUT)
        except Exception:  # noqa: BLE001 - drain failures must not block shutdown
            pass
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join()
        loop.close()

    @staticmethod
    async def _drain() -> None:
        """Await every task still pending on the loop, swallowing failures.

        Mirrors the executors' settle step: an evaluation that was
        submitted must complete (and charge) before shutdown, whether its
        result was absorbed, discarded, or doomed to raise.
        """
        current = asyncio.current_task()
        pending = [task for task in asyncio.all_tasks() if task is not current]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def _live_attrs(self) -> Tuple[str, ...]:
        return ("_loop", "_thread")


def _subprocess_evaluate(udf: UDF, row: Any) -> Tuple[float, int, float]:
    """Worker-side evaluation of one row; returns value plus charge deltas.

    Runs inside a pool worker on a pickled *copy* of the UDF.  Pickled
    copies carry the parent's counters over (see
    :meth:`~repro.udf.base.UDF.__getstate__`), so the worker reports the
    *delta* its evaluation added rather than absolute counters; the parent
    process folds the delta into the live UDF (exactly the
    ``absorb_charges`` contract of the sharded executor).  Module-level so
    it pickles by reference into the worker.
    """
    import numpy as np  # local: keep worker-side imports self-contained

    calls_before = udf.call_count
    time_before = udf.real_time
    value = udf(np.asarray(row, dtype=float))
    return float(value), udf.call_count - calls_before, udf.real_time - time_before


class SubprocessPoolTransport(EvaluationTransport):
    """Out-of-process evaluation backend: a bounded process pool.

    The adapter seam's reference backend: the same refinement window that
    rides threads or an event loop can ship each evaluation to a worker
    *process* — the shape of a UDF that must run outside the engine
    (native code that holds the GIL, a sandboxed model, a crashy C
    extension).  Each submission pickles the UDF into the worker (both
    :class:`~repro.udf.base.UDF` and :class:`~repro.udf.base.AsyncUDF`
    pickle cleanly; an async UDF evaluates through its blocking bridge),
    evaluates one row there, and returns the value together with the
    charge *delta*, which the parent folds into the live UDF — so charge
    accounting and the in-flight gauge read exactly as they do on the
    thread transport, and the window drivers' determinism contract carries
    over bit for bit (results are consumed by submission index, never by
    completion order).

    Retry note: a worker evaluates a pickled copy, so the installed
    :class:`~repro.udf.retry.RetryPolicy` retries *inside* the worker with
    a fresh per-copy budget window — the same per-copy semantics the
    process-pool sharding layer has always had.
    """

    name = "subprocess"

    def __init__(self) -> None:
        """Create a closed transport (the pool is allocated by ``open``)."""
        self._pool: Optional[ProcessPoolExecutor] = None

    def open(self, max_workers: int, label: str = "udf") -> None:
        """Start a bounded process pool (``label`` is advisory)."""
        del label  # worker processes cannot be usefully named
        if self._pool is not None:
            raise QueryError("subprocess transport is already open")
        if max_workers < 1:
            raise QueryError(f"max_workers must be positive, got {max_workers}")
        self._pool = ProcessPoolExecutor(max_workers=int(max_workers))

    def submit_rows(self, udf: UDF, X: np.ndarray) -> List[Future]:
        """One worker task per row; futures in row order.

        Each returned future resolves to the scalar value once the parent
        has absorbed the worker's charge delta — a consumer that sees the
        result also sees the call charged, the invariant the cost-model
        assertions rely on.
        """
        if self._pool is None:
            raise QueryError("subprocess transport is not open")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        futures: List[Future] = []
        for row in X:
            udf._enter_flight()
            outer: Future = Future()
            outer.set_running_or_notify_cancel()
            try:
                inner = self._pool.submit(_subprocess_evaluate, udf, row)
            except BaseException:
                udf._exit_flight()
                raise
            inner.add_done_callback(partial(self._relay, udf, outer))
            futures.append(outer)
        return futures

    @staticmethod
    def _relay(udf: UDF, outer: Future, inner: Future) -> None:
        """Absorb one worker result into the parent-side UDF and future."""
        try:
            value, calls, seconds = inner.result()
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            udf._exit_flight()
            outer.set_exception(exc)
        else:
            udf._charge(calls, seconds)
            udf._exit_flight()
            outer.set_result(value)

    def close(self) -> None:
        """Shut the pool down, joining its workers and manager thread."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _live_attrs(self) -> Tuple[str, ...]:
        return ("_pool",)


#: Transport registry: the named specs a plan (or a legacy ``transport=``
#: kwarg) may reference.  Values are factories, so every resolution gets a
#: fresh, closed instance.
TRANSPORTS: Dict[str, type] = {
    SerialTransport.name: SerialTransport,
    ThreadPoolTransport.name: ThreadPoolTransport,
    AsyncioTransport.name: AsyncioTransport,
    SubprocessPoolTransport.name: SubprocessPoolTransport,
}

#: What a ``transport=`` knob accepts: a registry name or an instance.
TransportSpec = Union[str, EvaluationTransport]

#: The default transport (the pre-refactor behaviour: a bounded pool).
DEFAULT_TRANSPORT = ThreadPoolTransport.name


def transport_name(spec: TransportSpec) -> str:
    """The registry name of a transport spec (validating it)."""
    if isinstance(spec, EvaluationTransport):
        return spec.name
    if isinstance(spec, str) and spec in TRANSPORTS:
        return spec
    raise PlanError(
        f"unknown transport {spec!r}; choose from {sorted(TRANSPORTS)} "
        "or pass an EvaluationTransport instance"
    )


def make_transport(spec: TransportSpec) -> EvaluationTransport:
    """Resolve a transport spec to a (closed) transport instance.

    A name builds a fresh instance from the registry; an instance is
    returned as-is (callers own its lifecycle through
    :meth:`EvaluationTransport.session`).
    """
    if isinstance(spec, EvaluationTransport):
        return spec
    return TRANSPORTS[transport_name(spec)]()
