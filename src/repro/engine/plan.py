"""ExecutionPlan: one validated description of *how* a query executes.

Four PRs grew four coexisting execution layers — batched
(:mod:`repro.engine.batch`), sharded (:mod:`repro.engine.parallel`),
async-overlapped (:mod:`repro.engine.async_exec`) and cross-tuple
pipelined (:mod:`repro.engine.pipeline`) — and each threaded its own knob
(``batch_size`` / ``workers`` / ``async_inflight`` /
``pipeline_lookahead`` / ``merge`` / ``parallel_seed`` / ``transport``)
separately through :class:`~repro.engine.operators.ApplyUDF`,
:class:`~repro.engine.operators.SelectUDF`,
:class:`~repro.engine.query.Query` and
:class:`~repro.engine.executor.UDFExecutionEngine`.  The selection logic
("``workers`` beats ``pipeline_lookahead`` beats ``async_inflight`` beats
``batch_size``") lived in one place, but the knobs, their validation and
their defaults were re-declared at every entry point, and an invalid
combination was *silently resolved* rather than rejected.

:class:`ExecutionPlan` collapses those paths: one frozen dataclass holding
every knob, validated on construction (:class:`~repro.exceptions.PlanError`
with the violated rule — and the precedence — in the message), resolved to
a composed executor by :meth:`ExecutionPlan.resolve`.  The legacy kwargs
on the operators, the query builder and the engine remain as a thin
deprecation shim that builds a plan (see :func:`resolve_plan_argument`).

Knob precedence (outermost first)
---------------------------------
The knobs *compose* rather than compete; precedence says which executor
sits outermost:

1. ``workers`` — process-pool sharding; everything below applies per shard.
2. ``pipeline_lookahead`` — cross-tuple stage pipelining within a
   process; ``async_inflight`` becomes its within-tuple window.
3. ``async_inflight`` — within-tuple overlapped refinement windows,
   carried by the configured ``transport``.
4. ``batch_size`` — set-at-a-time chunking (always active underneath the
   overlap layers; on its own when nothing above is set).
5. none of the above — the classic per-tuple path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Optional, Union

from repro.engine.async_exec import AsyncRefinementExecutor
from repro.engine.batch import DEFAULT_BATCH_SIZE, BatchExecutor
from repro.engine.parallel import MERGE_POLICIES, MergePolicy, ParallelExecutor
from repro.engine.pipeline import PipelinedExecutor
from repro.engine.transport import (
    DEFAULT_TRANSPORT,
    EvaluationTransport,
    TransportSpec,
    transport_name,
)
from repro.exceptions import PlanError
from repro.udf.retry import RetryPolicy

#: One-line statement of the composition order, quoted by every
#: conflict message so the caller sees the rule, not just the rejection.
PRECEDENCE = (
    "knob precedence (outermost first): workers > pipeline_lookahead > "
    "async_inflight > batch_size > per-tuple; outer knobs compose with "
    "inner ones (shards pipeline their tuples, pipelines window their "
    "refinement calls, windows ride the transport, chunks batch the GP work)"
)

#: The executor types a plan can resolve to (``None`` = per-tuple path).
PlannedExecutor = Union[
    ParallelExecutor, PipelinedExecutor, AsyncRefinementExecutor, BatchExecutor
]

#: The literal string spelling of "let the catalog profile choose the
#: knobs" — accepted wherever a plan is (operators, query builder,
#: Session/engine defaults) and resolved per UDF by :meth:`ExecutionPlan.auto`.
AUTO_PLAN = "auto"

#: What a ``plan=`` argument accepts: a built plan or the ``"auto"`` spelling.
PlanArgument = Union["ExecutionPlan", str]


def is_auto_plan(plan: Any) -> bool:
    """Whether ``plan`` is the ``"auto"`` spelling (rejecting other strings).

    The only string a ``plan=`` argument may carry is :data:`AUTO_PLAN`;
    any other string is a typo'd configuration, rejected here with a
    :class:`~repro.exceptions.PlanError` instead of failing later with an
    attribute error deep inside resolution.
    """
    if isinstance(plan, str):
        if plan != AUTO_PLAN:
            raise PlanError(
                f"unknown plan spelling {plan!r}; the only string plan is "
                f"{AUTO_PLAN!r} (or pass an ExecutionPlan)"
            )
        return True
    return False

#: Physical layouts a plan can select for the chunk pipeline.
STORAGE_LAYOUTS = ("tuple", "columnar")


@dataclass(frozen=True)
class ExecutionPlan:
    """A validated, resolvable description of the execution configuration.

    Construct one and hand it to ``plan=`` on
    :meth:`Query.apply_udf <repro.engine.query.Query.apply_udf>` /
    :meth:`Query.where_udf <repro.engine.query.Query.where_udf>`, the
    :class:`~repro.engine.operators.ApplyUDF` /
    :class:`~repro.engine.operators.SelectUDF` operators, or
    :meth:`UDFExecutionEngine.compute_with_plan
    <repro.engine.executor.UDFExecutionEngine.compute_with_plan>`.
    Validation happens in ``__post_init__`` — an invalid plan cannot be
    constructed, so an invalid configuration can never reach an executor.

    Parameters
    ----------
    batch_size:
        Set-at-a-time chunk size.  ``None`` means per-tuple execution when
        no overlap knob is set, and :data:`~repro.engine.batch
        .DEFAULT_BATCH_SIZE` underneath any overlap layer.
    workers:
        Process-pool shard count.  ``None`` disables sharding.
    merge:
        Training-point merge policy for sharded execution
        (``"discard" | "union" | "refit-threshold" | "shared"``).
        ``"shared"`` selects the live shared model
        (:mod:`repro.core.shared_model`): workers learn *through* a shared
        store mid-stream instead of relearning per shard, and a pipelined
        plan refreshes its prefetch walks against the live model.
        Accepted with ``workers`` set, or — for ``"shared"`` only — with
        ``pipeline_lookahead`` set; rejected otherwise.
    parallel_seed:
        Base seed of the per-shard random streams.  Inert without
        ``workers`` (historically accepted as a defensive default, so it
        does not conflict).
    async_inflight:
        Within-tuple refinement window (concurrently in-flight UDF
        calls).  ``1`` is bit-identical to the serial batched path.
    pipeline_lookahead:
        Cross-tuple lookahead of the stage scheduler.  ``1`` is
        bit-identical to the serial batched path (or the async path when
        ``async_inflight > 1``).
    speculative_k:
        Training points absorbed per refinement iteration by the OLGAPRO
        processors (PR 2's speculative multi-point tuning).  A processor-
        construction knob, not an executor knob: it is applied by
        :class:`~repro.engine.executor.UDFExecutionEngine` when the engine
        is built with ``plan=``, and must be left ``None`` in plans handed
        to an already-built engine (resolution cannot reconfigure live
        processors).
    oversubscribe:
        Scales the *default* shard count above the core count when
        ``workers`` is ``None``.  Conflicts with an explicit ``workers``
        (which would silently win) — set one or the other.
    transport:
        How refinement-window evaluations reach the black box:
        ``"threads"`` (default, bounded pool), ``"serial"`` (the explicit
        no-overlap spelling — legal with no window, or a window of one),
        ``"asyncio"`` (event loop; requires an
        :class:`~repro.udf.base.AsyncUDF` and a window to carry), or an
        :class:`~repro.engine.transport.EvaluationTransport` instance.
    retry:
        Fault-tolerance policy (:class:`~repro.udf.retry.RetryPolicy`):
        how transient UDF failures are retried (deterministic capped
        backoff, per-point attempt cap, cross-point budget) and whether
        tuples that stay failing are quarantined as *degraded* results
        instead of aborting the query.  Installed on the UDF for the
        duration of the computation, so the serial, thread-pool, asyncio
        and process-pool paths all inherit it; also caps shard
        re-execution after a dead pool worker (``shard_attempts``).
        ``None`` (the default) keeps the fail-fast behaviour.
    storage:
        Physical layout the chunk pipeline runs on.  ``"tuple"`` (default)
        is the row-at-a-time store; ``"columnar"`` packs each chunk into
        column blocks (:mod:`repro.engine.columnar`) and turns on the
        vectorised whole-column hot paths — stacked Monte-Carlo draws,
        column-armed kernel caches, batched envelope/bound sweeps.  The
        columnar path is gated bit-identical to the tuple store under the
        same seed, so every executor layer inherits it without any API
        change; a storage choice is an implementation detail of the chunk,
        not of the query.
    """

    batch_size: Optional[int] = None
    workers: Optional[int] = None
    merge: MergePolicy = "union"
    parallel_seed: Optional[int] = None
    async_inflight: Optional[int] = None
    pipeline_lookahead: Optional[int] = None
    speculative_k: Optional[int] = None
    oversubscribe: float = 1.0
    transport: TransportSpec = DEFAULT_TRANSPORT
    retry: Optional[RetryPolicy] = None
    storage: str = "tuple"

    def __post_init__(self) -> None:
        """Validate values and cross-knob consistency (raises PlanError)."""
        for knob in ("batch_size", "workers", "async_inflight",
                     "pipeline_lookahead", "speculative_k"):
            value = getattr(self, knob)
            if value is not None and int(value) < 1:
                raise PlanError(f"{knob} must be positive, got {value}")
        if self.oversubscribe < 1.0:
            raise PlanError(f"oversubscribe must be at least 1, got {self.oversubscribe}")
        if self.merge not in MERGE_POLICIES:
            raise PlanError(
                f"unknown merge policy {self.merge!r}; choose from {MERGE_POLICIES}"
            )
        name = transport_name(self.transport)  # validates the spec
        sharded = self.workers is not None or self.oversubscribe != 1.0
        if self.merge != "union" and not sharded:
            # merge="shared" is the one policy with a meaning beyond the
            # sharded layer: a pipelined plan uses it to keep prefetch walks
            # refreshed against the live model (see PipelinedExecutor's
            # shared_refresh).  Every other policy still requires workers.
            if not (self.merge == "shared" and self.pipeline_lookahead is not None):
                hint = (
                    "set workers or pipeline_lookahead (or drop merge)"
                    if self.merge == "shared"
                    else "set workers (or drop merge)"
                )
                raise PlanError(
                    f"merge={self.merge!r} configures what worker-learned training "
                    f"points do to the parent model, but the plan has no workers; "
                    f"{hint} — " + PRECEDENCE
                )
        if self.workers is not None and self.oversubscribe != 1.0:
            raise PlanError(
                "workers and oversubscribe conflict: oversubscribe scales the "
                "*default* shard count and an explicit workers would silently "
                "win; set one or the other — " + PRECEDENCE
            )
        overlapped = (
            (self.async_inflight is not None and self.async_inflight > 1)
            or (self.pipeline_lookahead is not None and self.pipeline_lookahead > 1)
        )
        if name == "serial" and overlapped:
            raise PlanError(
                "transport='serial' evaluates inline and cannot overlap the "
                f"requested window (async_inflight={self.async_inflight}, "
                f"pipeline_lookahead={self.pipeline_lookahead}); use the "
                "'threads' or 'asyncio' transport, or drop the overlap knobs — "
                + PRECEDENCE
            )
        if name == "asyncio" and (
            self.async_inflight is None and self.pipeline_lookahead is None
        ):
            raise PlanError(
                f"transport={name!r} selects how refinement-window evaluations "
                "are carried, but the plan requests no window; set "
                "async_inflight (or pipeline_lookahead) — " + PRECEDENCE
            )
        if self.storage not in STORAGE_LAYOUTS:
            raise PlanError(
                f"unknown storage layout {self.storage!r}; choose from "
                f"{STORAGE_LAYOUTS}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise PlanError(
                f"retry must be a repro.udf.retry.RetryPolicy (or None), got "
                f"{type(self.retry).__name__}"
            )
        if sharded and isinstance(self.transport, EvaluationTransport):
            raise PlanError(
                "a transport *instance* is process-local and cannot be shipped "
                "to pool workers; name the transport (e.g. transport='asyncio') "
                "when combining it with workers — " + PRECEDENCE
            )

    # -- auto-planning ------------------------------------------------------------
    @classmethod
    def auto(
        cls,
        udf: Any,
        relation_size: Optional[int] = None,
        *,
        catalog: Any = None,
        engine: Any = None,
    ) -> "ExecutionPlan":
        """Choose the knobs from the UDF's declared catalog profile.

        The profile-driven planner: instead of hand-tuning ``batch_size``
        / ``transport`` / ``async_inflight`` / ``pipeline_lookahead`` /
        ``speculative_k`` / ``storage`` per query, the caller declares
        what the UDF *is* (its :class:`~repro.udf.catalog.UDFProfile`)
        and this method picks the spelled-out plan the declaration
        implies.  The result is an ordinary validated
        :class:`ExecutionPlan` — ``plan="auto"`` anywhere a plan is
        accepted routes through here, and the resolved plan is gated
        bit-identical to the same plan written explicitly.

        Knob selection by latency class (see the architecture doc for the
        full table):

        * *neutral* (negligible cost, no backend) — the serial batched
          path: ``batch_size`` only (the bit-identity anchor).
        * *moderate* (≥ 1 ms/call) — an overlapped refinement window of
          4, carried by ``"asyncio"`` for an async-capable UDF and
          ``"threads"`` otherwise.
        * *slow* (≥ 10 ms/call) — a window of 8 plus cross-tuple
          pipelining (``pipeline_lookahead=4``) and, at engine
          construction, speculative multi-point tuning
          (``speculative_k=2``).
        * a declared ``backend`` overrides the transport choice; a
          non-serial backend with nothing to overlap still gets a window
          of one so evaluation actually rides the declared backend.

        ``batch_size`` is the default chunk size capped by
        ``relation_size`` (no point chunking past the input).
        ``storage="columnar"`` is selected for vectorised deterministic
        UDFs.  Sharding (``workers``), retries and merge policies are
        never auto-selected — they change resource footprint and failure
        semantics, which stay explicit decisions.

        Parameters
        ----------
        udf:
            A :class:`~repro.udf.base.UDF`, a registered catalog name, or
            a :class:`~repro.udf.catalog.UDFProfile` directly.
        relation_size:
            Best-effort input cardinality (rows the plan will process);
            ``None`` when unknown.
        catalog:
            The :class:`~repro.udf.catalog.UDFCatalog` to consult
            (default: :func:`~repro.udf.catalog.default_catalog`).
        engine:
            When given, ``speculative_k`` mirrors the engine's configured
            value instead of being recommended — a live engine's
            processors cannot be reconfigured by resolution, so the auto
            plan must agree with what the engine was built with.
        """
        # Lazy import: the catalog lives in the UDF package, which the
        # transport module (imported above) pulls in at import time.
        from repro.udf.catalog import (
            LATENCY_MODERATE,
            LATENCY_SLOW,
            UDFProfile,
            default_catalog,
        )

        if isinstance(udf, UDFProfile):
            profile = udf
        else:
            lookup = catalog if catalog is not None else default_catalog()
            if isinstance(udf, str):
                profile = lookup.profile(udf)
            else:
                profile = lookup.profile_for(udf)

        knobs: dict = {}
        batch = DEFAULT_BATCH_SIZE
        if relation_size is not None and int(relation_size) > 0:
            batch = max(1, min(batch, int(relation_size)))
        knobs["batch_size"] = batch
        if profile.vectorized and profile.deterministic:
            knobs["storage"] = "columnar"
        latency = profile.latency_class
        window = {LATENCY_SLOW: 8, LATENCY_MODERATE: 4}.get(latency)
        transport: Optional[str] = None
        if profile.backend is not None:
            transport = profile.backend
            if transport_name(transport) == "serial":
                window = None  # inline evaluation has nothing to overlap
            elif window is None:
                # A window of one is bit-identical to the serial batched
                # path but routes evaluation through the declared backend.
                window = 1
        elif window is not None:
            transport = "asyncio" if profile.async_capable else "threads"
        if transport is not None:
            knobs["transport"] = transport
        if window is not None:
            knobs["async_inflight"] = window
        if (
            latency == LATENCY_SLOW
            and window is not None
            and window > 1
            and (relation_size is None or int(relation_size) >= 4)
        ):
            knobs["pipeline_lookahead"] = 4
        if engine is not None:
            configured = getattr(engine, "_processor_kwargs", {}).get("speculative_k")
            if configured is not None:
                knobs["speculative_k"] = configured
        elif latency == LATENCY_SLOW:
            knobs["speculative_k"] = 2
        return cls(**knobs)

    # -- resolution ---------------------------------------------------------------
    def resolve(self, engine: Any) -> Optional[PlannedExecutor]:
        """Compose the executor stack this plan describes, bound to ``engine``.

        The single selection point previously hand-wired in
        ``operators._make_udf_executor`` and the engine's ``compute_*``
        shims.  Returns ``None`` for the all-default plan — the classic
        per-tuple path (callers fall back to
        :meth:`~repro.engine.executor.UDFExecutionEngine.compute`).

        Raises
        ------
        PlanError
            When ``speculative_k`` is set (an engine-construction knob —
            see the field docs) on a plan resolved against an engine.
        """
        if self.speculative_k is not None:
            configured = getattr(engine, "_processor_kwargs", {}).get("speculative_k")
            if configured != self.speculative_k:
                raise PlanError(
                    "speculative_k configures the OLGAPRO processors at engine "
                    "construction and cannot be applied by resolution; build "
                    "the engine with UDFExecutionEngine(..., plan=plan) or "
                    "pass speculative_k to the engine directly"
                )
        batch_size = self.batch_size if self.batch_size is not None else DEFAULT_BATCH_SIZE
        if self.workers is not None or self.oversubscribe != 1.0:
            return ParallelExecutor(
                engine,
                workers=self.workers,
                batch_size=batch_size,
                merge=self.merge,
                seed=self.parallel_seed,
                async_inflight=self.async_inflight,
                pipeline_lookahead=self.pipeline_lookahead,
                oversubscribe=self.oversubscribe,
                transport=self.transport,
                retry=self.retry,
                storage=self.storage,
            )
        if self.pipeline_lookahead is not None:
            return PipelinedExecutor(
                engine,
                lookahead=self.pipeline_lookahead,
                inflight=self.async_inflight,
                batch_size=batch_size,
                transport=self.transport,
                storage=self.storage,
                shared_refresh=self.merge == "shared",
            )
        if self.async_inflight is not None:
            return AsyncRefinementExecutor(
                engine,
                inflight=self.async_inflight,
                batch_size=batch_size,
                transport=self.transport,
                storage=self.storage,
            )
        if self.batch_size is not None or self.storage != "tuple":
            # storage="columnar" runs on the chunk pipeline, so a columnar
            # plan with no explicit chunking still resolves to a
            # BatchExecutor at the default chunk size.
            return BatchExecutor(engine, batch_size, storage=self.storage)
        return None

    # -- introspection ------------------------------------------------------------
    def describe(self) -> str:
        """Compact human-readable summary (non-default knobs only)."""
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={value!r}")
        return "ExecutionPlan(" + ", ".join(parts) + ")" if parts else "ExecutionPlan()"

    def with_overrides(self, **overrides: Any) -> "ExecutionPlan":
        """A copy with the given knobs replaced (re-validated)."""
        return replace(self, **overrides)


def resolve_plan_argument(
    plan: Optional[ExecutionPlan],
    *,
    warn_stacklevel: int = 3,
    **legacy: Any,
) -> ExecutionPlan:
    """The ``plan=``-or-legacy-kwargs shim shared by every entry point.

    * ``plan`` given and every legacy kwarg at its default → ``plan``.
    * ``plan`` ``None`` → a plan built from the legacy kwargs (their
      documented deprecation path; a :class:`DeprecationWarning` is
      emitted when any legacy knob is actually set).
    * Both given → :class:`~repro.exceptions.PlanError`: two sources of
      truth for the same knob cannot be reconciled silently.

    ``legacy`` maps field names of :class:`ExecutionPlan` to values, with
    ``None`` (or the field default) meaning "not set".
    """
    defaults = {field.name: field.default for field in fields(ExecutionPlan)}
    unknown = set(legacy) - set(defaults)
    if unknown:
        raise PlanError(f"unknown execution knob(s): {sorted(unknown)}")
    supplied = {
        name: value
        for name, value in legacy.items()
        if value is not None and value != defaults[name]
    }
    if plan is not None:
        if supplied:
            raise PlanError(
                "pass either plan= or the legacy executor kwargs, not both "
                f"(got plan= and {sorted(supplied)})"
            )
        return plan
    if supplied:
        warnings.warn(
            "per-knob executor kwargs (batch_size=, workers=, ...) are a "
            "legacy shim; build an ExecutionPlan and pass plan= instead",
            DeprecationWarning,
            stacklevel=warn_stacklevel,
        )
    return ExecutionPlan(**{name: value for name, value in legacy.items()
                            if value is not None})
