"""Typed query results: relation/outputs + timings + verdicts + plan.

Part 2 of the API redesign: every execution entry point —
:meth:`UDFExecutionEngine.compute_with_plan
<repro.engine.executor.UDFExecutionEngine.compute_with_plan>`,
:meth:`Operator.execute <repro.engine.operators.Operator.execute>`,
:meth:`Query.run <repro.engine.query.Query.run>` and the serving layer
(:mod:`repro.engine.service`) — returns one :class:`QueryResult` instead of
a bare :class:`~repro.engine.tuples.Relation` or ``list`` of
:class:`~repro.engine.executor.ComputedOutput`.  The result carries

* the payload itself (:attr:`QueryResult.relation` or
  :attr:`QueryResult.outputs`),
* the :class:`~repro.timing.PhaseTimings` the execution accumulated,
* one :class:`TupleVerdict` per produced tuple — the ``certain`` /
  ``possible`` answer vocabulary of Feng, Glavic and Kennedy
  (arXiv:2302.08676) applied to OLGAPRO's per-tuple ε/δ bounds, the same
  classification the serving layer streams as anytime events — and
* the :class:`~repro.engine.plan.ExecutionPlan` that was executed.

Back-compat contract: a :class:`QueryResult` *is* its payload for every
pre-existing consumer — iteration, ``len``, indexing, membership and
attribute access all delegate to the wrapped relation/list, so code (and
tests) written against the bare return types keeps working unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Sequence

from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import QueryError
from repro.timing import PhaseTimings

if TYPE_CHECKING:  # avoid a runtime cycle (executor/plan import this module)
    from repro.engine.executor import ComputedOutput
    from repro.engine.plan import ExecutionPlan

#: The anytime answer vocabulary: a tuple the query *proved* (existence
#: certain and the claimed error bound within the accuracy requirement),
#: one it can only *suggest*, one that was filtered out, or one whose UDF
#: evaluation was quarantined after the retry policy was exhausted (a
#: *degraded* answer carrying the last bound the online algorithm had).
VERDICT_CERTAIN = "certain"
VERDICT_POSSIBLE = "possible"
VERDICT_EXCLUDED = "excluded"
VERDICT_DEGRADED = "degraded"


@dataclass(frozen=True)
class TupleVerdict:
    """Per-tuple anytime answer: how settled one output tuple is.

    ``verdict`` is ``"certain"`` when the tuple certainly exists
    (existence probability 1) and its claimed error bound is within the
    accuracy requirement; ``"possible"`` when it survives but one of those
    guarantees is open (sub-unit existence probability, a bound above the
    requirement, or a plain-MC NaN bound whose guarantee is a-priori);
    ``"excluded"`` when online filtering dropped it; ``"degraded"`` when
    the tuple was quarantined — its UDF evaluations kept failing after the
    retry policy was exhausted, so the answer is the last (unconverged)
    state the online algorithm had rather than a converged one, with the
    matching honest bound (NaN when it failed before any bound existed).
    ``bound`` is the
    claimed error bound backing the verdict (the largest bound annotation
    for relation rows) and ``version`` a per-result monotonic sequence
    number — the same quadruple the serving layer streams as
    :class:`~repro.engine.service.QueryEvent` while bounds converge.
    """

    tuple_id: int
    verdict: str
    bound: float
    version: int


def _bound_within(bound: float, epsilon: Optional[float]) -> bool:
    """Whether a claimed bound is a *closed* guarantee under ``epsilon``."""
    if math.isnan(bound):
        return False
    if epsilon is None:
        return bound <= 0.0
    return bound <= epsilon


def classify_output(
    output: "ComputedOutput", epsilon: Optional[float], tuple_id: int, version: int
) -> TupleVerdict:
    """Verdict for one :class:`~repro.engine.executor.ComputedOutput`.

    ``failed`` is checked before ``dropped``/missing-distribution: a
    quarantined tuple often has no distribution either, but it was never
    *excluded* — its answer is degraded, not ruled out.
    """
    bound = float(output.error_bound)
    if getattr(output, "failed", False):
        return TupleVerdict(tuple_id, VERDICT_DEGRADED, bound, version)
    if output.dropped or output.distribution is None:
        return TupleVerdict(tuple_id, VERDICT_EXCLUDED, bound, version)
    if output.existence_probability >= 1.0 and _bound_within(bound, epsilon):
        return TupleVerdict(tuple_id, VERDICT_CERTAIN, bound, version)
    return TupleVerdict(tuple_id, VERDICT_POSSIBLE, bound, version)


def classify_row(
    row: UncertainTuple, epsilon: Optional[float], tuple_id: int, version: int
) -> TupleVerdict:
    """Verdict for one materialised relation row.

    The bound is the largest ``*_error_bound`` annotation the UDF
    operators recorded (0 when the row carries none — plain relational
    work makes no approximation claim).  Excluded tuples never reach a
    relation; a quarantined evaluation reaches it carrying a
    ``*_degraded`` annotation and classifies as ``degraded``, like its
    :class:`ComputedOutput` counterpart.
    """
    bounds = [
        float(value)
        for key, value in row.annotations.items()
        if key.endswith("_error_bound")
    ]
    bound = max(bounds) if bounds else 0.0
    if any(
        value for key, value in row.annotations.items() if key.endswith("_degraded")
    ):
        return TupleVerdict(tuple_id, VERDICT_DEGRADED, bound, version)
    closed = _bound_within(bound, epsilon) if bounds else True
    if row.existence_probability >= 1.0 and closed:
        return TupleVerdict(tuple_id, VERDICT_CERTAIN, bound, version)
    return TupleVerdict(tuple_id, VERDICT_POSSIBLE, bound, version)


def classify_outputs(
    outputs: Sequence["ComputedOutput"], epsilon: Optional[float]
) -> List[TupleVerdict]:
    """One verdict per output, versions in tuple order."""
    return [
        classify_output(output, epsilon, index, index)
        for index, output in enumerate(outputs)
    ]


def classify_rows(
    rows: Sequence[UncertainTuple], epsilon: Optional[float]
) -> List[TupleVerdict]:
    """One verdict per relation row, versions in row order."""
    return [classify_row(row, epsilon, index, index) for index, row in enumerate(rows)]


class QueryResult:
    """A query's payload plus its execution record.

    Wraps either a :class:`~repro.engine.tuples.Relation` (operator /
    query / service execution) or a ``list`` of
    :class:`~repro.engine.executor.ComputedOutput` (the engine's
    plan-driven evaluation), and delegates the payload's protocol —
    ``__iter__`` / ``__len__`` / ``__getitem__`` / ``__contains__`` /
    attribute access — so every pre-QueryResult consumer keeps working.

    Attributes
    ----------
    plan:
        The :class:`~repro.engine.plan.ExecutionPlan` that was executed
        (``None`` for plain relational operators with no UDF work).
    timings:
        Wall-clock :class:`~repro.timing.PhaseTimings`: always an
        ``execute`` phase, plus whatever phases the resolved executor
        accumulated (``sampling`` / ``inference`` / ``refinement`` are
        *work* time and may overlap the ``execute`` wall-clock).
    verdicts:
        One :class:`TupleVerdict` per produced tuple, in order.
    """

    def __init__(
        self,
        value: Any,
        plan: "Optional[ExecutionPlan]" = None,
        timings: Optional[PhaseTimings] = None,
        verdicts: Optional[Sequence[TupleVerdict]] = None,
    ) -> None:
        """Wrap ``value`` (a relation or an output list) with its record."""
        self._value = value
        self.plan = plan
        self.timings = timings if timings is not None else PhaseTimings()
        self.verdicts: List[TupleVerdict] = list(verdicts) if verdicts else []

    # -- typed payload accessors --------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The materialised relation (raises when this wraps raw outputs)."""
        if not isinstance(self._value, Relation):
            raise QueryError(
                "this QueryResult wraps raw engine outputs, not a relation; "
                "use .outputs"
            )
        return self._value

    @property
    def outputs(self) -> "List[ComputedOutput]":
        """The raw per-tuple outputs (raises when this wraps a relation)."""
        if isinstance(self._value, Relation):
            raise QueryError(
                "this QueryResult wraps a materialised relation, not raw "
                "outputs; use .relation"
            )
        return self._value

    def certain(self) -> List[TupleVerdict]:
        """The verdicts classified ``certain``."""
        return [v for v in self.verdicts if v.verdict == VERDICT_CERTAIN]

    def possible(self) -> List[TupleVerdict]:
        """The verdicts classified ``possible``."""
        return [v for v in self.verdicts if v.verdict == VERDICT_POSSIBLE]

    def degraded(self) -> List[TupleVerdict]:
        """The verdicts classified ``degraded`` (quarantined tuples)."""
        return [v for v in self.verdicts if v.verdict == VERDICT_DEGRADED]

    # -- payload protocol delegation (back-compat) --------------------------------
    def __iter__(self) -> Iterator[Any]:
        return iter(self._value)

    def __len__(self) -> int:
        return len(self._value)

    def __getitem__(self, index: Any) -> Any:
        return self._value[index]

    def __contains__(self, item: Any) -> bool:
        return item in self._value

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, QueryResult):
            return bool(self._value == other._value)
        return bool(self._value == other)

    __hash__ = None  # type: ignore[assignment]  # mutable payload

    def __getattr__(self, name: str) -> Any:
        # Only reached when normal lookup fails: delegate to the payload
        # (Relation.name/.schema/.tuples, list methods, ...).
        return getattr(object.__getattribute__(self, "_value"), name)

    def __repr__(self) -> str:
        kind = type(self._value).__name__
        return (
            f"QueryResult({kind}, n={len(self._value)}, "
            f"certain={len(self.certain())}, possible={len(self.possible())})"
        )
