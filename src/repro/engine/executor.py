"""Strategy layer: how the engine computes a UDF on one uncertain tuple.

Each UDF referenced by a query is bound to a per-UDF processor that persists
across tuples (this is what makes the GP approach pay off: the emulator
trained on early tuples answers later tuples almost for free).  Three
strategies are available, mirroring the paper's evaluation:

* ``"mc"``      — Algorithm 1, plain Monte-Carlo simulation of the UDF,
* ``"gp"``      — OLGAPRO (Algorithm 5),
* ``"hybrid"``  — the §5.4 selector that measures the UDF and picks one.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Optional

from repro.core.accuracy import AccuracyRequirement
from repro.core.filtering import SelectionPredicate
from repro.core.hybrid import HybridExecutor
from repro.core.mc_baseline import monte_carlo_output, monte_carlo_with_filter
from repro.core.olgapro import OLGAPRO
from repro.distributions.base import Distribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.exceptions import PlanError, QueryError, UDFError
from repro.rng import RandomState, as_generator
from repro.timing import PhaseTimings
from repro.udf.base import UDF

if TYPE_CHECKING:  # imported lazily at runtime (plan.py imports this module)
    from repro.engine.plan import ExecutionPlan
    from repro.engine.result import QueryResult


def _warn_legacy_shim(name: str) -> None:
    """One deprecation warning per legacy ``compute_*`` entry point.

    The supported paths are ``compute_with_plan(plan=...)`` for direct
    engine use and :meth:`repro.engine.session.Session.submit` for served
    queries; the per-layer shims remain only so existing call sites keep
    working while they migrate.
    """
    warnings.warn(
        f"UDFExecutionEngine.{name}() is a legacy shim; build an "
        "ExecutionPlan and call compute_with_plan(..., plan=plan), or "
        "submit the query through repro.engine.session.Session",
        DeprecationWarning,
        stacklevel=3,
    )

Strategy = Literal["mc", "gp", "hybrid"]


@dataclass(frozen=True)
class ComputedOutput:
    """Output of evaluating one UDF on one uncertain tuple."""

    #: Output distribution (``None`` when the tuple was filtered out early).
    distribution: Optional[EmpiricalDistribution]
    #: Total error bound claimed for the distribution (NaN for plain MC,
    #: whose guarantee is the a-priori sampling bound).
    error_bound: float
    #: Existence probability contributed by a selection predicate (1.0 when
    #: no predicate was evaluated).
    existence_probability: float
    #: Whether the tuple was dropped by online filtering.
    dropped: bool
    #: UDF calls charged for this evaluation.
    udf_calls: int
    #: Charged time (wall clock + simulated UDF cost) in seconds.
    charged_time: float
    #: Whether the tuple was quarantined: its UDF evaluations kept failing
    #: after the retry policy was exhausted, so the query carried on and
    #: this output holds the last (unconverged) state instead of a
    #: converged answer.  ``error_bound`` is the last bound the online
    #: algorithm had (NaN when it failed before any bound existed) and
    #: ``distribution`` the matching envelope samples, or ``None``.
    failed: bool = False


class UDFExecutionEngine:
    """Evaluates UDFs on uncertain tuples with a configurable strategy."""

    def __init__(
        self,
        strategy: Strategy = "gp",
        requirement: AccuracyRequirement | None = None,
        random_state: RandomState = None,
        plan: "ExecutionPlan | str | None" = None,
        **processor_kwargs,
    ):
        """Bind strategy, accuracy requirement, random stream and defaults.

        ``plan`` installs a default :class:`~repro.engine.plan.ExecutionPlan`
        for this engine: :meth:`compute_with_plan` falls back to it when
        called without an explicit plan, and a plan-carried
        ``speculative_k`` is applied to the per-UDF processors here (it is
        a processor-construction knob, so only the engine — which builds
        the processors — can honour it).  The string ``"auto"`` is also
        accepted as the default plan: every computation then resolves its
        plan from the evaluated UDF's catalog profile
        (:meth:`ExecutionPlan.auto <repro.engine.plan.ExecutionPlan.auto>`).
        """
        if strategy not in ("mc", "gp", "hybrid"):
            raise QueryError(f"unknown strategy {strategy!r}")
        self.strategy: Strategy = strategy
        self.requirement = requirement if requirement is not None else AccuracyRequirement()
        self._rng = as_generator(random_state)
        self._processor_kwargs = processor_kwargs
        if isinstance(plan, str):
            from repro.engine.plan import is_auto_plan

            is_auto_plan(plan)  # validates the spelling (PlanError otherwise)
        self.plan = plan
        if plan is not None and not isinstance(plan, str) and plan.speculative_k is not None:
            configured = self._processor_kwargs.setdefault(
                "speculative_k", plan.speculative_k
            )
            if configured != plan.speculative_k:
                raise PlanError(
                    f"plan.speculative_k={plan.speculative_k} conflicts with "
                    f"speculative_k={configured} passed directly to the engine"
                )
        self._processors: dict[str, OLGAPRO | HybridExecutor] = {}
        #: Optional shared-model seam: a callable ``udf -> store-or-None``
        #: consulted whenever a GP-capable processor is handed out.  The
        #: serving layer installs it under ``share_models`` so every
        #: processor it creates is bound to the region's live
        #: :class:`~repro.core.shared_model.SharedEmulatorStore`; ``None``
        #: (the default) means processors learn privately.
        self._shared_store_resolver = None

    def __getstate__(self):
        """Engine state without the shared-store resolver seam.

        The resolver is an externally-installed closure over live store
        objects; neither pickles.  Pool workers that should keep learning
        against a shared model receive a store *proxy* explicitly and
        rebind their own sync (see ``repro.engine.parallel._run_shard``).
        """
        state = dict(self.__dict__)
        state["_shared_store_resolver"] = None
        return state

    def reseed(self, random_state: RandomState) -> None:
        """Point the engine *and every existing processor* at a new stream.

        The per-UDF processors capture the engine's generator at construction
        time, so simply replacing ``self._rng`` would leave them consuming
        the old stream.  The parallel execution layer calls this inside each
        worker to switch an unpickled engine copy onto its shard's
        :func:`~repro.rng.spawn_keyed` stream.  Each processor reseeds its
        own consumers via its ``reseed`` method.
        """
        rng = as_generator(random_state)
        self._rng = rng
        for processor in self._processors.values():
            processor.reseed(rng)

    def _processor_for(self, udf: UDF) -> OLGAPRO | HybridExecutor:
        key = udf.name
        if key not in self._processors:
            if self.strategy == "gp":
                self._processors[key] = OLGAPRO(
                    udf,
                    requirement=self.requirement,
                    random_state=self._rng,
                    **self._processor_kwargs,
                )
            else:  # hybrid
                self._processors[key] = HybridExecutor(
                    udf,
                    requirement=self.requirement,
                    random_state=self._rng,
                    **self._processor_kwargs,
                )
        processor = self._processors[key]
        if self._shared_store_resolver is not None and self.strategy != "mc":
            self._attach_shared_sync(udf, processor)
        return processor

    def _attach_shared_sync(self, udf: UDF, processor: OLGAPRO | HybridExecutor) -> None:
        """Bind a live shared-model sync onto ``processor`` (idempotent).

        Resolves the store through the installed ``_shared_store_resolver``
        and installs an :class:`~repro.core.shared_model.EmulatorSync` on
        the processor's ``model_sync`` seam, so its tuple boundaries become
        learning exchanges with the shared store.  A processor that already
        carries a sync keeps it.
        """
        target = processor._olgapro if isinstance(processor, HybridExecutor) else processor
        if getattr(target, "model_sync", None) is not None:
            return
        assert self._shared_store_resolver is not None
        store = self._shared_store_resolver(udf)
        if store is None:
            return
        from repro.core.shared_model import EmulatorSync

        target.model_sync = EmulatorSync(
            store,
            target.emulator,
            max_training_points=int(target.max_training_points),
        )

    # -- plan-driven evaluation ---------------------------------------------------------
    def compute_with_plan(
        self,
        udf: UDF,
        input_distributions,
        plan: "ExecutionPlan | str | None" = None,
        predicate: SelectionPredicate | None = None,
    ) -> "QueryResult":
        """Evaluate ``udf`` on many tuples as one ExecutionPlan describes.

        The single plan-driven entry point: ``plan`` (or, when ``None``,
        the engine's default plan from construction, or the all-default
        per-tuple plan) is resolved to the composed executor stack and run
        over ``input_distributions``, optionally under a selection
        ``predicate``.  The per-layer convenience methods below
        (:meth:`compute_batch`, :meth:`compute_async`,
        :meth:`compute_pipelined`, :meth:`compute_parallel`) are
        deprecated shims over this.

        Returns
        -------
        QueryResult
            Wrapping the per-tuple :class:`ComputedOutput` list (the
            result iterates/indexes like that list), plus the executed
            plan, per-phase timings and per-tuple
            :class:`~repro.engine.result.TupleVerdict` records.

        Raises
        ------
        QueryError
            As :class:`~repro.exceptions.PlanError` for an invalid plan,
            plus whatever the resolved executor raises.
        """
        from repro.engine.plan import ExecutionPlan, is_auto_plan
        from repro.engine.result import QueryResult, classify_outputs

        distributions = list(input_distributions)
        resolved_plan = plan if plan is not None else self.plan
        if resolved_plan is None:
            resolved_plan = ExecutionPlan()
        elif is_auto_plan(resolved_plan):
            resolved_plan = ExecutionPlan.auto(udf, len(distributions), engine=self)
        executor = resolved_plan.resolve(self)
        timings = PhaseTimings()
        # The retry policy rides the UDF for the duration of this one
        # computation: every execution layer — and the pickled UDF copies
        # inside pool workers — funnels evaluations through the UDF's
        # chokepoints, so installing it here is what makes serial, thread,
        # asyncio and sharded paths retry identically.
        if resolved_plan.retry is not None:
            udf._install_retry_policy(resolved_plan.retry)
        try:
            with timings.measure("execute"):
                if executor is None:
                    if predicate is None:
                        outputs = [self.compute(udf, dist) for dist in distributions]
                    else:
                        outputs = [
                            self.compute_with_predicate(udf, dist, predicate)
                            for dist in distributions
                        ]
                elif predicate is None:
                    outputs = executor.compute_batch(udf, distributions)
                else:
                    outputs = executor.compute_batch_with_predicate(
                        udf, distributions, predicate
                    )
        finally:
            if resolved_plan.retry is not None:
                udf._install_retry_policy(None)
        executor_timings = getattr(executor, "timings", None)
        if isinstance(executor_timings, PhaseTimings):
            timings.merge(executor_timings)
        return QueryResult(
            outputs,
            plan=resolved_plan,
            timings=timings,
            verdicts=classify_outputs(outputs, self.requirement.epsilon),
        )

    # -- deprecated per-layer shims -----------------------------------------------------
    def compute_batch(
        self, udf: UDF, input_distributions, batch_size: int | None = None
    ) -> "QueryResult":
        """Evaluate ``udf`` on many tuples through the batched pipeline.

        .. deprecated::
            Legacy shim over :meth:`compute_with_plan` (a
            :class:`DeprecationWarning` is emitted); pass
            ``ExecutionPlan(batch_size=...)`` instead.  Under the same
            seed and a deterministic tuning strategy the results match
            calling :meth:`compute` once per tuple, in order.
        """
        _warn_legacy_shim("compute_batch")
        from repro.engine.batch import DEFAULT_BATCH_SIZE
        from repro.engine.plan import ExecutionPlan

        plan = ExecutionPlan(
            batch_size=batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        )
        return self.compute_with_plan(udf, input_distributions, plan)

    def compute_parallel(
        self,
        udf: UDF,
        input_distributions,
        workers: int | None = None,
        batch_size: int | None = None,
        merge: str = "union",
        seed: int | None = None,
        async_inflight: int | None = None,
        oversubscribe: float = 1.0,
        transport=None,
    ) -> "QueryResult":
        """Evaluate ``udf`` on many tuples sharded across a process pool.

        .. deprecated::
            Legacy shim over :meth:`compute_with_plan` (a
            :class:`DeprecationWarning` is emitted); pass
            ``ExecutionPlan(workers=...)`` instead.  A plan has no
            "scaled core-count default" spelling of ``workers=None``, so
            the shim materialises it via
            :func:`~repro.engine.parallel.default_worker_count` — the
            built plan is explicit about the shard count it runs.  Knob
            conflicts the old direct path resolved silently (an explicit
            ``workers`` with ``oversubscribe``, a transport *instance*
            with workers) now raise a typed
            :class:`~repro.exceptions.PlanError`.
        """
        _warn_legacy_shim("compute_parallel")
        from repro.engine.batch import DEFAULT_BATCH_SIZE
        from repro.engine.parallel import default_worker_count
        from repro.engine.plan import ExecutionPlan
        from repro.engine.transport import DEFAULT_TRANSPORT

        if workers is None and oversubscribe == 1.0:
            workers = default_worker_count()
        plan = ExecutionPlan(
            batch_size=batch_size if batch_size is not None else DEFAULT_BATCH_SIZE,
            workers=workers,
            merge=merge,  # type: ignore[arg-type]
            parallel_seed=seed,
            async_inflight=async_inflight,
            oversubscribe=oversubscribe,
            transport=transport if transport is not None else DEFAULT_TRANSPORT,
        )
        return self.compute_with_plan(udf, input_distributions, plan)

    def compute_async(
        self,
        udf: UDF,
        input_distributions,
        inflight: int | None = None,
        batch_size: int | None = None,
        transport=None,
    ) -> "QueryResult":
        """Evaluate ``udf`` on many tuples with overlapped refinement calls.

        .. deprecated::
            Legacy shim over :meth:`compute_with_plan` (a
            :class:`DeprecationWarning` is emitted); pass
            ``ExecutionPlan(async_inflight=...)`` instead.  Up to
            ``inflight`` refinement-loop UDF evaluations run concurrently
            on the configured ``transport``; ``inflight=1`` is
            bit-identical to the serial batched path under the same seed.
        """
        _warn_legacy_shim("compute_async")
        from repro.engine.async_exec import DEFAULT_ASYNC_INFLIGHT
        from repro.engine.batch import DEFAULT_BATCH_SIZE
        from repro.engine.plan import ExecutionPlan

        plan = ExecutionPlan(
            batch_size=batch_size if batch_size is not None else DEFAULT_BATCH_SIZE,
            async_inflight=inflight if inflight is not None else DEFAULT_ASYNC_INFLIGHT,
            transport=transport if transport is not None else "threads",
        )
        return self.compute_with_plan(udf, input_distributions, plan)

    def compute_pipelined(
        self,
        udf: UDF,
        input_distributions,
        lookahead: int | None = None,
        inflight: int | None = None,
        batch_size: int | None = None,
        transport=None,
    ) -> "QueryResult":
        """Evaluate ``udf`` on many tuples with cross-tuple pipelining.

        .. deprecated::
            Legacy shim over :meth:`compute_with_plan` (a
            :class:`DeprecationWarning` is emitted); pass
            ``ExecutionPlan(pipeline_lookahead=...)`` instead.  While one
            tuple's refinement waits on black-box UDF calls, the next
            ``lookahead - 1`` tuples' stages already run; ``lookahead=1``
            is bit-identical to the serial batched path under the same
            seed.
        """
        _warn_legacy_shim("compute_pipelined")
        from repro.engine.batch import DEFAULT_BATCH_SIZE
        from repro.engine.pipeline import DEFAULT_PIPELINE_LOOKAHEAD
        from repro.engine.plan import ExecutionPlan

        plan = ExecutionPlan(
            batch_size=batch_size if batch_size is not None else DEFAULT_BATCH_SIZE,
            pipeline_lookahead=(
                lookahead if lookahead is not None else DEFAULT_PIPELINE_LOOKAHEAD
            ),
            async_inflight=inflight,
            transport=transport if transport is not None else "threads",
        )
        return self.compute_with_plan(udf, input_distributions, plan)

    # -- quarantine ----------------------------------------------------------------
    @staticmethod
    def _quarantine_enabled(udf: UDF) -> bool:
        """Whether the UDF's installed retry policy quarantines failures."""
        policy = getattr(udf, "_retry_policy", None)
        return policy is not None and bool(policy.quarantine)

    @staticmethod
    def quarantined_output(
        error_bound: float = float("nan"), charged_time: float = 0.0
    ) -> ComputedOutput:
        """A ``failed`` output for a tuple whose evaluation stayed failing."""
        return ComputedOutput(
            distribution=None,
            error_bound=error_bound,
            existence_probability=1.0,
            dropped=False,
            udf_calls=0,
            charged_time=charged_time,
            failed=True,
        )

    # -- evaluation without a predicate ------------------------------------------------
    def compute(self, udf: UDF, input_distribution: Distribution) -> ComputedOutput:
        """Full output distribution of ``udf`` on one tuple's input vector.

        Under a quarantining retry policy a tuple whose evaluations stay
        failing yields a ``failed=True`` output (classified *degraded*)
        instead of raising — the per-tuple backstop of the fault-tolerance
        contract; the GP path usually quarantines inside OLGAPRO with the
        last bound it had.
        """
        if self._quarantine_enabled(udf):
            try:
                return self._compute_inner(udf, input_distribution)
            except UDFError:
                return self.quarantined_output()
        return self._compute_inner(udf, input_distribution)

    def _compute_inner(self, udf: UDF, input_distribution: Distribution) -> ComputedOutput:
        """The strategy dispatch of :meth:`compute` (no quarantine catch)."""
        if self.strategy == "mc":
            result = monte_carlo_output(
                udf, input_distribution, requirement=self.requirement, random_state=self._rng
            )
            return ComputedOutput(
                distribution=result.distribution,
                error_bound=self.requirement.epsilon,
                existence_probability=1.0,
                dropped=False,
                udf_calls=result.udf_calls,
                charged_time=result.charged_time,
            )
        processor = self._processor_for(udf)
        if isinstance(processor, HybridExecutor):
            outcome = processor.process(input_distribution)
            if hasattr(outcome, "error_bound"):
                return ComputedOutput(
                    distribution=outcome.distribution,
                    error_bound=outcome.error_bound.epsilon_total,
                    existence_probability=1.0,
                    dropped=False,
                    udf_calls=outcome.udf_calls,
                    charged_time=outcome.charged_time,
                )
            return ComputedOutput(
                distribution=outcome.distribution,
                error_bound=self.requirement.epsilon,
                existence_probability=1.0,
                dropped=False,
                udf_calls=outcome.udf_calls,
                charged_time=outcome.charged_time,
            )
        result = processor.process(input_distribution)
        return ComputedOutput(
            distribution=result.distribution,
            error_bound=result.error_bound.epsilon_total,
            existence_probability=1.0,
            dropped=False,
            udf_calls=result.udf_calls,
            charged_time=result.charged_time,
            failed=getattr(result, "quarantined", False),
        )

    # -- evaluation with a selection predicate ------------------------------------------
    def compute_with_predicate(
        self, udf: UDF, input_distribution: Distribution, predicate: SelectionPredicate
    ) -> ComputedOutput:
        """Evaluate ``udf`` under a predicate, using online filtering (§2.2B, §5.5).

        Quarantine applies exactly as on :meth:`compute`: under a
        quarantining retry policy, a tuple whose evaluations stay failing
        becomes a ``failed`` output (neither dropped nor kept — the
        predicate was never decided) instead of aborting the query.
        """
        if self._quarantine_enabled(udf):
            try:
                return self._compute_with_predicate_inner(
                    udf, input_distribution, predicate
                )
            except UDFError:
                return self.quarantined_output()
        return self._compute_with_predicate_inner(udf, input_distribution, predicate)

    def _compute_with_predicate_inner(
        self, udf: UDF, input_distribution: Distribution, predicate: SelectionPredicate
    ) -> ComputedOutput:
        """The strategy dispatch of :meth:`compute_with_predicate`."""
        if self.strategy == "mc":
            result = monte_carlo_with_filter(
                udf,
                input_distribution,
                predicate,
                requirement=self.requirement,
                random_state=self._rng,
            )
            existence = result.decision.estimate
            return ComputedOutput(
                distribution=result.distribution,
                error_bound=self.requirement.epsilon,
                existence_probability=existence,
                dropped=result.dropped,
                udf_calls=result.udf_calls,
                charged_time=result.charged_time,
            )
        processor = self._processor_for(udf)
        if isinstance(processor, HybridExecutor):
            # The hybrid executor delegates predicates to its chosen method;
            # keep the logic simple by resolving the choice first.
            decision = processor.decide(input_distribution)
            if decision.method == "mc":
                result = monte_carlo_with_filter(
                    udf,
                    input_distribution,
                    predicate,
                    requirement=self.requirement,
                    random_state=self._rng,
                )
                return ComputedOutput(
                    distribution=result.distribution,
                    error_bound=self.requirement.epsilon,
                    existence_probability=result.decision.estimate,
                    dropped=result.dropped,
                    udf_calls=result.udf_calls,
                    charged_time=result.charged_time,
                )
            processor = processor._olgapro
        filtered = processor.process_with_filter(input_distribution, predicate)
        if filtered.dropped:
            return ComputedOutput(
                distribution=None,
                error_bound=self.requirement.epsilon,
                existence_probability=filtered.existence_probability,
                dropped=True,
                udf_calls=0,
                charged_time=filtered.charged_time,
            )
        return ComputedOutput(
            distribution=filtered.result.distribution,
            error_bound=filtered.result.error_bound.epsilon_total,
            existence_probability=filtered.existence_probability,
            dropped=False,
            udf_calls=filtered.result.udf_calls,
            charged_time=filtered.charged_time,
            failed=getattr(filtered.result, "quarantined", False),
        )
