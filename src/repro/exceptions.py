"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch every failure mode of the framework with a single ``except`` clause
while still being able to distinguish specific conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DistributionError(ReproError):
    """Raised when an uncertain-data distribution is misconfigured.

    Examples: a negative standard deviation, mixture weights that do not sum
    to one, or a covariance matrix that is not positive semi-definite.
    """


class EmptySampleError(DistributionError):
    """Raised when an empirical distribution is built from zero samples."""


class UDFError(ReproError):
    """Raised when a user-defined function cannot be evaluated.

    This covers both malformed UDF registrations (wrong dimensionality,
    non-scalar output) and failures raised by the black-box code itself.
    """


class TransientUDFError(UDFError):
    """A UDF evaluation failed in a way that is expected to be retryable.

    Models the failure modes of a remote UDF service — timeouts, dropped
    connections, 5xx responses.  The retry machinery
    (:class:`~repro.udf.retry.RetryPolicy`) re-issues the *same* evaluation
    up to its attempt cap; because the retried call is deterministic (same
    input point, same UDF), a successful retry yields a value bit-identical
    to the one a fault-free run would have produced.
    """


class FatalUDFError(UDFError):
    """A UDF evaluation failed in a way that retrying cannot fix.

    Models permanent failures — malformed input the service rejects,
    authorisation errors, a bug in the black-box code.  The retry machinery
    never re-issues a fatal failure: it propagates immediately (or
    quarantines the tuple when the active
    :class:`~repro.udf.retry.RetryPolicy` enables quarantine).
    """


class GPError(ReproError):
    """Raised for Gaussian-process failures (singular kernel matrix, etc.)."""


class NotTrainedError(GPError):
    """Raised when inference is requested from a GP with no training data."""


class AccuracyError(ReproError):
    """Raised for invalid accuracy specifications.

    Examples: ``epsilon`` outside ``(0, 1)``, ``delta`` outside ``(0, 1)``, or
    an error-budget split that does not sum to the total budget.
    """


class ConvergenceError(ReproError):
    """Raised when an online algorithm cannot meet its accuracy target.

    OLGAPRO raises this when the maximum number of training points allowed
    for a single input tuple has been exhausted and the error bound still
    exceeds the user requirement.
    """


class IndexError_(ReproError):
    """Raised for spatial-index (R-tree) misuse.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class SchemaError(ReproError):
    """Raised by the query-engine substrate for schema violations."""


class QueryError(ReproError):
    """Raised when a logical query plan is malformed or cannot be executed."""


class TransportDrainTimeoutError(QueryError):
    """Raised when a transport's drain exceeded its deadline.

    Wraps the raw :class:`concurrent.futures.TimeoutError` that would
    otherwise escape :meth:`~repro.engine.transport.EvaluationTransport.drain`
    untyped; the message names the transport and the elapsed deadline in
    seconds.  The transport's pool is still torn down on this path — the
    timeout abandons the stuck evaluations, it does not leak their threads.
    """


class ShardFailureError(QueryError):
    """Raised when a parallel shard failed after exhausting recovery.

    The message carries everything needed to reproduce the failed shard in
    isolation: the shard index, the tuple range it covered, the executor's
    base seed, and the shard's ``spawn_keyed`` key (which equals the shard
    index).  Re-running just that shard with the same key replays the same
    per-shard random stream, so the failure is reproducible from the
    message alone.
    """


class PlanError(QueryError):
    """Raised when an :class:`~repro.engine.plan.ExecutionPlan` is invalid.

    Covers contradictory knob combinations (e.g. a merge policy without
    sharded execution, a serial transport with an overlap window), values
    outside their domain, and mixing ``plan=`` with legacy executor kwargs.
    The message always states the violated rule — and, for conflicts, the
    documented knob precedence — so the caller is never left guessing which
    path the engine would have silently picked.  Subclasses
    :class:`QueryError`, so existing error handling keeps working.
    """


class ServiceError(QueryError):
    """Raised for misuse of the serving layer itself.

    Covers lifecycle violations of
    :class:`~repro.engine.service.QueryService` (submitting to a closed
    service, invalid service configuration).  Subclasses
    :class:`QueryError` so a serving deployment can reuse the library's
    existing error handling.
    """


class ServiceOverloadError(ServiceError):
    """Raised when admission control rejects a query.

    The service bounds the number of admitted (queued plus running)
    queries; a submit beyond ``queue_limit`` is rejected *immediately*
    with this error rather than queued without bound — the caller decides
    whether to retry, shed load, or escalate.
    """


class CircuitOpenError(ServiceError):
    """Raised when the per-UDF circuit breaker fast-fails a submission.

    After a UDF's queries fail ``breaker_threshold`` times in a row, the
    service stops admitting new queries against that UDF name for a
    cooldown window instead of burning worker budget on a failing
    dependency.  Once the cooldown elapses, a single half-open probe query
    is admitted: success closes the breaker, failure re-opens it.  The
    message names the tripped UDF and the cooldown.
    """


class QueryCancelledError(ServiceError):
    """Raised by :meth:`~repro.engine.service.QueryHandle.result` after a
    query was cancelled (explicitly, or by service shutdown) before it
    produced its final relation."""


class QueryTimeoutError(ServiceError):
    """Raised when a query exceeded its per-query timeout (server side) or
    a :meth:`~repro.engine.service.QueryHandle.result` wait expired
    (client side) — the message states which deadline was missed."""
