"""Streaming detection with selection predicates and online filtering.

Scenario (motivated by the paper's severe-weather / anomaly-detection use
cases): a stream of uncertain measurement tuples arrives; for each tuple an
expensive UDF scores it, and only tuples whose score falls in an alert range
with sufficient probability should be reported.  Online filtering lets both
the Monte-Carlo baseline and the GP approach discard uninteresting tuples
early, and the GP approach additionally amortises UDF evaluations across the
stream.

Run with:  python examples/streaming_filtering.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AccuracyRequirement,
    OLGAPRO,
    SelectionPredicate,
    monte_carlo_with_filter,
)
from repro.udf import reference_function
from repro.workloads import input_stream, workload_for_udf


def main() -> None:
    # An expensive, bumpy scoring function (1 ms per call, simulated cost).
    udf = reference_function("F4", simulated_eval_time=1e-3)
    requirement = AccuracyRequirement(epsilon=0.1, delta=0.05)

    # Alert when the score is likely to exceed 2.0.
    predicate = SelectionPredicate(low=2.0, high=1e9, threshold=0.2)

    spec = workload_for_udf(udf)
    stream = list(input_stream(spec, 12, random_state=3))

    # --- GP approach with online filtering -------------------------------------
    processor = OLGAPRO(udf, requirement, random_state=0)
    gp_alerts = 0
    gp_charged = 0.0
    for i, tuple_dist in enumerate(stream):
        outcome = processor.process_with_filter(tuple_dist, predicate)
        gp_charged += outcome.charged_time
        status = "dropped " if outcome.dropped else f"ALERT p={outcome.existence_probability:.2f}"
        gp_alerts += int(not outcome.dropped)
        print(f"  [GP ] tuple {i:2d}: {status}")
    print(f"  [GP ] alerts={gp_alerts}  charged time={gp_charged:.2f} s  "
          f"training points={processor.n_training}\n")

    # --- MC baseline with online filtering --------------------------------------
    udf_mc = reference_function("F4", simulated_eval_time=1e-3)
    mc_alerts = 0
    mc_charged = 0.0
    for i, tuple_dist in enumerate(stream):
        outcome = monte_carlo_with_filter(
            udf_mc, tuple_dist, predicate, requirement=requirement, random_state=i
        )
        mc_charged += outcome.charged_time
        mc_alerts += int(not outcome.dropped)
    print(f"  [MC ] alerts={mc_alerts}  charged time={mc_charged:.2f} s")

    speedup = mc_charged / max(gp_charged, 1e-9)
    print(f"\n  GP speedup over MC on this stream: {speedup:.1f}x")
    if gp_alerts != mc_alerts:
        print("  note: alert sets may differ slightly near the probability threshold")


if __name__ == "__main__":
    main()
