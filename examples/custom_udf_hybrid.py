"""Registering a custom black-box UDF and letting the hybrid executor choose.

Scenario: a domain scientist has an arbitrary piece of numerical code (here a
damped-oscillation response curve solved by quadrature) and wants result
distributions on uncertain inputs without deciding between Monte Carlo and
GP emulation by hand.  The hybrid executor measures the UDF and picks the
method using the paper's Section 5.4 rules.

Run with:  python examples/custom_udf_hybrid.py
"""

from __future__ import annotations

import numpy as np
from scipy import integrate

from repro.core import AccuracyRequirement, HybridExecutor
from repro.distributions import Gaussian, IndependentJoint
from repro.udf import UDF


def damped_response(x: np.ndarray) -> float:
    """Energy of a damped oscillator with uncertain damping and frequency.

    A deliberately slow black box: the energy integral is evaluated by
    adaptive quadrature on every call.
    """
    damping, frequency = float(x[0]), float(x[1])

    def integrand(t: float) -> float:
        return np.exp(-damping * t) * np.cos(frequency * t) ** 2

    value, _ = integrate.quad(integrand, 0.0, 20.0, limit=200)
    return value


def main() -> None:
    udf = UDF(
        damped_response,
        dimension=2,
        name="DampedResponse",
        domain=(np.array([0.05, 0.5]), np.array([1.0, 6.0])),
    )
    requirement = AccuracyRequirement(epsilon=0.1, delta=0.05)
    executor = HybridExecutor(udf, requirement, random_state=0)

    # A small stream of uncertain (damping, frequency) tuples.
    tuples = [
        IndependentJoint([Gaussian(0.2, 0.02), Gaussian(2.0, 0.1)]),
        IndependentJoint([Gaussian(0.5, 0.05), Gaussian(3.5, 0.2)]),
        IndependentJoint([Gaussian(0.8, 0.05), Gaussian(1.2, 0.1)]),
    ]

    decision = executor.decide(tuples[0])
    print(f"hybrid decision: method={decision.method}  "
          f"(measured eval time {decision.measured_eval_time * 1000:.3f} ms, "
          f"dimension {decision.dimension}, decided by {decision.source})")

    for i, tuple_dist in enumerate(tuples):
        result = executor.process(tuple_dist)
        dist = result.distribution
        print(
            f"  tuple {i}: mean={float(dist.mean()[0]):.4f}  "
            f"std={dist.std():.4f}  "
            f"P(output > 0.4)={1.0 - float(dist.cdf(np.asarray(0.4))):.3f}  "
            f"udf calls={result.udf_calls}"
        )

    print(f"\ntotal UDF evaluations across the stream: {udf.call_count}")


if __name__ == "__main__":
    main()
