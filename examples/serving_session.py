"""Concurrent query serving through the Session / QueryService API.

Scenario: instead of one script calling ``engine.compute_with_plan`` at a
time, an always-on :class:`~repro.engine.service.QueryService` accepts many
queries at once onto a shared worker budget.  Clients talk to it through a
:class:`~repro.engine.session.Session`: ``submit`` returns a
:class:`~repro.engine.service.QueryHandle` immediately, whose ``stream()``
yields anytime ``(tuple_id, verdict, bound, version)`` events as tuples
finish refining and whose ``result()`` blocks for the final
:class:`~repro.engine.result.QueryResult`.

The example demonstrates the two halves of the serving contract:

* **concurrency** — four queries in flight at once on one service;
* **determinism** — each served result is bit-identical to the same query
  (same seed, same plan) run directly, asserted below.

Run with:  python examples/serving_session.py
"""

from __future__ import annotations

import numpy as np

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    ExecutionPlan,
    Query,
    Session,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.udf.synthetic import async_service_udf

#: Simulated round-trip latency of the "remote service" (seconds).
LATENCY = 5e-3

RELATION = generate_galaxy_relation(3, random_state=11)
PLAN = ExecutionPlan(batch_size=2)


def make_engine() -> UDFExecutionEngine:
    """A fresh engine per query — the Session calls this factory itself."""
    return UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.15, delta=0.05),
        random_state=7,
        n_samples=120,
    )


def make_query() -> Query:
    """A fresh query with its own UDF instance (per-query instrumentation)."""
    udf = async_service_udf("F4", latency=LATENCY)
    return Query(RELATION).apply_udf(udf, ["ra_offset", "dec_offset"], alias="f")


def main() -> None:
    # --- direct serial reference: same seed, same plan, no service -----------
    serial_result = (
        Query(RELATION)
        .apply_udf(
            async_service_udf("F4", latency=LATENCY),
            ["ra_offset", "dec_offset"],
            alias="f",
            plan=PLAN,
        )
        .run(make_engine())
    )

    with Session(make_engine, plan=PLAN, worker_budget=4) as session:
        # --- four concurrent queries on one shared service -------------------
        handles = [session.submit(make_query(), name=f"q{i}") for i in range(4)]
        print(f"submitted {len(handles)} concurrent queries; "
              f"{session.service.active_count()} in flight")

        # --- anytime event stream on the first query --------------------------
        print("\nanytime events for q0:")
        for event in handles[0].stream():
            print(f"  tuple {event.tuple_id}: {event.verdict:>8s}  "
                  f"bound={event.bound:.3f}  version={event.version}")

        # --- final results: every served run is bit-identical to serial -------
        for handle in handles:
            result = handle.result(timeout=60.0)
            for served_row, serial_row in zip(result.relation.tuples,
                                              serial_result.relation.tuples):
                assert np.array_equal(
                    served_row["f"].samples, serial_row["f"].samples
                )
                assert (
                    served_row.annotations["f_error_bound"]
                    == serial_row.annotations["f_error_bound"]
                )
        print(f"\nall {len(handles)} served results bit-identical to the "
              "direct serial run (asserted)")

        stats = session.service.stats
        print(f"service stats: submitted={stats['submitted']} "
              f"completed={stats['completed']} rejected={stats['rejected']}")


if __name__ == "__main__":
    main()
