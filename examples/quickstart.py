"""Quickstart: compute the distribution of a UDF over an uncertain input.

Scenario (query Q1 of the paper): a galaxy's redshift is known only up to a
Gaussian measurement error, and we want the distribution of its age
``GalAge(redshift)`` together with a guaranteed error bound.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AccuracyRequirement, Gaussian, OLGAPRO, galage_udf, monte_carlo_output


def main() -> None:
    # A black-box, moderately expensive UDF: the age of the universe at a
    # given redshift, computed by numerical integration.
    udf = galage_udf()

    # One uncertain input tuple: redshift 0.45 +/- 0.02 (Gaussian).
    redshift = Gaussian(mu=0.45, sigma=0.02)

    # The user's accuracy goal: with probability 0.95, any interval
    # probability computed from the returned distribution is within 0.1 of
    # the truth (discrepancy measure).
    requirement = AccuracyRequirement(epsilon=0.1, delta=0.05)

    # --- the paper's approach: OLGAPRO (online Gaussian-process emulation) --
    processor = OLGAPRO(udf, requirement, random_state=0)
    result = processor.process(redshift)

    age = result.distribution
    print("OLGAPRO (GP emulation)")
    print(f"  mean galaxy age        : {float(age.mean()[0]):.3f} Gyr")
    print(f"  90% interval           : [{float(age.ppf(0.05)):.3f}, {float(age.ppf(0.95)):.3f}] Gyr")
    print(f"  P(age in [8.5, 9.5])   : {age.interval_probability(8.5, 9.5):.3f}")
    print(f"  claimed error bound    : {result.error_bound.epsilon_total:.3f} "
          f"(holds with prob. {result.error_bound.confidence:.3f})")
    print(f"  UDF evaluations used   : {result.udf_calls}")
    print(f"  training points so far : {result.n_training}")

    # Processing a second tuple is nearly free: the emulator is already trained.
    second = processor.process(Gaussian(mu=0.6, sigma=0.03))
    print(f"  second tuple UDF calls : {second.udf_calls}")

    # --- the baseline: plain Monte-Carlo simulation of the UDF ------------------
    mc = monte_carlo_output(udf.with_simulated_eval_time(0.0), redshift,
                            requirement=requirement, random_state=0)
    print("\nMonte-Carlo baseline")
    print(f"  mean galaxy age        : {float(mc.distribution.mean()[0]):.3f} Gyr")
    print(f"  UDF evaluations used   : {mc.udf_calls}")


if __name__ == "__main__":
    main()
