"""Hiding a slow UDF's latency *across* tuples with the pipeline scheduler.

Scenario: the UDF is a genuinely slow black box (a remote service or an
expensive simulation, modelled by a
:class:`~repro.udf.synthetic.RealCostFunction` whose every call occupies
10 ms of wall-clock) and the per-tuple refinement window is kept small —
the call-frugal configuration, where speculative overshoot per window is
at most one evaluation.  PR 3's within-tuple overlap
(``async_inflight``) still serialises the window rounds of consecutive
tuples; ``pipeline_lookahead`` additionally overlaps the tail of each
tuple's refinement with the sampling, first inference and prefetched first
windows of the next few tuples.

The example demonstrates both halves of the scheduler's contract:

* ``pipeline_lookahead=1`` is the serial batched path, bit for bit, and
* at ``pipeline_lookahead=4`` the committed results are bit-identical to
  the within-tuple async run — speculation changes *when* evaluations
  happen and who pays for them, never the answer — while the wall-clock
  drops.

Run with:  python examples/pipelined_refinement.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    AsyncRefinementExecutor,
    BatchExecutor,
    PipelinedExecutor,
    UDFExecutionEngine,
)
from repro.rng import as_generator
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf

#: Real per-call latency of the "external" black box (seconds).
EVAL_TIME = 1e-2

#: Within-tuple refinement window (kept small: the call-frugal regime).
WINDOW = 4

N_TUPLES = 8


def make_run():
    """A fresh (udf, engine, tuple stream) triple with fixed seeds."""
    udf = reference_function("F1", real_eval_time=EVAL_TIME)
    engine = UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.15, delta=0.05),
        random_state=7,
        n_samples=120,
    )
    dists = list(
        input_stream(workload_for_udf(udf), N_TUPLES, random_state=as_generator(3))
    )
    return udf, engine, dists


def main() -> None:
    # --- serial baseline ------------------------------------------------------
    udf, engine, dists = make_run()
    started = time.perf_counter()
    serial_outputs = BatchExecutor(engine, batch_size=N_TUPLES).compute_batch(udf, dists)
    serial_wall = time.perf_counter() - started
    print("serial batched refinement")
    print(f"  wall-clock             : {serial_wall:.2f} s")
    print(f"  UDF evaluations        : {udf.call_count}")

    # --- pipeline_lookahead=1: must be the serial path, bit for bit ----------
    udf, engine, dists = make_run()
    identity_outputs = PipelinedExecutor(
        engine, lookahead=1, batch_size=N_TUPLES
    ).compute_batch(udf, dists)
    for a, b in zip(serial_outputs, identity_outputs):
        assert np.array_equal(a.distribution.samples, b.distribution.samples)
        assert a.error_bound == b.error_bound
    print("\npipeline_lookahead=1")
    print("  output                 : bit-identical to the serial run (asserted)")

    # --- within-tuple overlap only (PR 3) ------------------------------------
    udf, engine, dists = make_run()
    started = time.perf_counter()
    async_outputs = AsyncRefinementExecutor(
        engine, inflight=WINDOW, batch_size=N_TUPLES
    ).compute_batch(udf, dists)
    async_wall = time.perf_counter() - started
    print(f"\nasync_inflight={WINDOW} (within-tuple overlap only)")
    print(f"  wall-clock             : {async_wall:.2f} s")
    print(f"  UDF evaluations        : {udf.call_count}")

    # --- cross-tuple pipelining on top ----------------------------------------
    udf, engine, dists = make_run()
    executor = PipelinedExecutor(
        engine, lookahead=4, inflight=WINDOW, batch_size=N_TUPLES
    )
    started = time.perf_counter()
    pipelined_outputs = executor.compute_batch(udf, dists)
    pipelined_wall = time.perf_counter() - started
    for a, b in zip(async_outputs, pipelined_outputs):
        assert np.array_equal(a.distribution.samples, b.distribution.samples)
        assert a.error_bound == b.error_bound
    print(f"\npipeline_lookahead=4, async_inflight={WINDOW}")
    print(f"  wall-clock             : {pipelined_wall:.2f} s")
    print(f"  UDF evaluations        : {udf.call_count} "
          "(prefetches that no tuple consumed are paid for and discarded)")
    print(f"  speculative prefetches : {executor.last_speculative_calls} "
          f"({executor.last_wasted_calls} wasted)")
    print("  output                 : bit-identical to the async run (asserted)")
    print(f"  speedup vs async       : {async_wall / pipelined_wall:.2f}x")
    print(f"  speedup vs serial      : {serial_wall / pipelined_wall:.2f}x")


if __name__ == "__main__":
    main()
