"""Serving a natively-async UDF over the event-loop evaluation transport.

Scenario: the UDF lives behind an HTTP-style service whose client is a
coroutine — every evaluation *awaits* a round trip instead of blocking a
thread.  :func:`repro.udf.synthetic.async_service_udf` simulates exactly
that (an :class:`~repro.udf.base.AsyncUDF` whose each request awaits 10 ms)
and the ``transport="asyncio"`` knob plugs it into the same overlapped
refinement machinery the thread-pool transport uses: a window of
``async_inflight`` requests costs roughly one round trip, held in flight on
a single event-loop thread.

The example also demonstrates the determinism half of the contract: at
``async_inflight=1`` the asyncio-transport executor *is* the serial
batched path, bit for bit — asserted below — and it shows the modern
``plan=`` spelling of the configuration next to the executor-level one.

Run with:  python examples/asyncio_udf_service.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    AsyncRefinementExecutor,
    BatchExecutor,
    ExecutionPlan,
    UDFExecutionEngine,
)
from repro.rng import as_generator
from repro.udf.synthetic import async_service_udf
from repro.workloads.generators import input_stream, workload_for_udf

#: Simulated round-trip latency of the "remote service" (seconds).
LATENCY = 1e-2

N_TUPLES = 6


def make_run():
    """A fresh (service udf, engine, tuple stream) triple with fixed seeds."""
    udf = async_service_udf("F4", latency=LATENCY)
    engine = UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.12, delta=0.05),
        random_state=7,
        n_samples=120,
    )
    dists = list(
        input_stream(workload_for_udf(udf), N_TUPLES, random_state=as_generator(3))
    )
    return udf, engine, dists


def main() -> None:
    # --- serial baseline: the same async UDF, one awaited request at a time --
    udf, engine, dists = make_run()
    started = time.perf_counter()
    serial_outputs = BatchExecutor(engine, batch_size=N_TUPLES).compute_batch(udf, dists)
    serial_wall = time.perf_counter() - started
    print("serial batched refinement (blocking bridge of the async UDF)")
    print(f"  wall-clock             : {serial_wall:.2f} s")
    print(f"  UDF requests           : {udf.call_count}")

    # --- asyncio transport, inflight=1: the serial path, bit for bit ---------
    udf, engine, dists = make_run()
    executor = AsyncRefinementExecutor(
        engine, inflight=1, batch_size=N_TUPLES, transport="asyncio"
    )
    identity_outputs = executor.compute_batch(udf, dists)
    for a, b in zip(serial_outputs, identity_outputs):
        assert np.array_equal(a.distribution.samples, b.distribution.samples)
        assert a.error_bound == b.error_bound
    print("\nasyncio transport, async_inflight=1")
    print("  output                 : bit-identical to the serial run (asserted)")

    # --- asyncio transport, inflight=8: overlap the awaited round trips ------
    udf, engine, dists = make_run()
    plan = ExecutionPlan(batch_size=N_TUPLES, async_inflight=8, transport="asyncio")
    started = time.perf_counter()
    async_outputs = engine.compute_with_plan(udf, dists, plan)
    async_wall = time.perf_counter() - started
    print(f"\nasyncio transport, {plan.describe()}")
    print(f"  wall-clock             : {async_wall:.2f} s")
    print(f"  UDF requests           : {udf.call_count} "
          "(speculative windows may evaluate a few extra points)")
    print(f"  peak in-flight requests: {udf.max_in_flight}")
    print(f"  speedup vs serial      : {serial_wall / async_wall:.2f}x")

    # Every output still carries its rigorous claimed error bound; only the
    # transport the refinement windows rode has changed.
    worst = max(output.error_bound for output in async_outputs)
    print(f"  worst claimed bound    : {worst:.3f}")


if __name__ == "__main__":
    main()
