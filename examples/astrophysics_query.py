"""Astrophysics case study: the paper's queries Q1 and Q2 on SDSS-like data.

Builds a synthetic Galaxy relation with uncertain redshifts and sky
positions, then runs:

* Q1 — ``SELECT objID, GalAge(redshift) FROM Galaxy``
* Q2 — a self-join computing the pairwise sky distance with a range predicate
  on it, plus the comoving volume between each surviving pair of galaxies.

Every derived attribute is a full output *distribution* with an attached
error bound, and tuples whose predicate probability is too low are filtered
online.

Run with:  python examples/astrophysics_query.py
"""

from __future__ import annotations

from repro.core import AccuracyRequirement
from repro.engine import Query, UDFExecutionEngine, generate_galaxy_relation
from repro.udf import comove_vol_udf, galage_udf, sky_distance_udf


def run_q1(galaxy, engine) -> None:
    print("Q1: SELECT G.objID, GalAge(G.redshift) FROM Galaxy G")
    result = (
        Query(galaxy)
        .apply_udf(galage_udf(), ["redshift"], alias="galage")
        .project(["objID", "galage"])
        .run(engine, name="q1_result")
    )
    for row in result:
        age = row["galage"]
        bound = row.annotations["galage_error_bound"]
        print(
            f"  objID={row['objID']:>3}  age={float(age.mean()[0]):6.2f} Gyr  "
            f"90% interval=[{float(age.ppf(0.05)):5.2f}, {float(age.ppf(0.95)):5.2f}]  "
            f"error bound={bound:.3f}"
        )


def run_q2(galaxy, engine) -> None:
    print("\nQ2: pairwise sky distance in [0.2, 3.0] degrees, with comoving volume")
    result = (
        Query(galaxy)
        .alias("G1")
        .cross_join(galaxy, alias="G2", pair_filter=lambda t: t["G1.objID"] < t["G2.objID"])
        .where_udf(
            sky_distance_udf(),
            ["G1.ra_offset", "G1.dec_offset", "G2.ra_offset", "G2.dec_offset"],
            alias="dist",
            low=0.2,
            high=3.0,
            threshold=0.1,
        )
        .apply_udf(comove_vol_udf(), ["G1.redshift", "G2.redshift"], alias="covol")
        .project(["G1.objID", "G2.objID", "dist", "covol"])
        .run(engine, name="q2_result")
    )
    if len(result) == 0:
        print("  (no pair satisfied the predicate with sufficient probability)")
    for row in result:
        print(
            f"  pair=({row['G1.objID']}, {row['G2.objID']})  "
            f"P(predicate)={row.existence_probability:.2f}  "
            f"distance mean={float(row['dist'].mean()[0]):5.2f} deg  "
            f"comoving volume mean={float(row['covol'].mean()[0]):12.4g} Mpc^3"
        )


def main() -> None:
    galaxy = generate_galaxy_relation(6, random_state=7)
    engine = UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.15, delta=0.05),
        random_state=0,
        n_samples=800,
    )
    run_q1(galaxy, engine)
    run_q2(galaxy, engine)


if __name__ == "__main__":
    main()
