"""Letting the UDF catalog plan the query: ``plan="auto"``.

Scenario: the caller knows *what* the UDF costs — it is a remote service
with a ~20 ms round trip — but does not want to hand-tune batching,
overlap windows and transports.  That cost is exactly the input of the
paper's cost model (per-call evaluation time of the opaque ``f``), so
each UDF declares it as a :class:`~repro.udf.catalog.UDFProfile` and
``plan="auto"`` turns the declaration into an :class:`ExecutionPlan`.

Three things are demonstrated below:

* profiles are auto-derived (or declared with overrides) and kept in a
  :class:`~repro.udf.catalog.UDFCatalog` — the astro case-study UDFs
  ship pre-profiled in :func:`~repro.udf.catalog.default_catalog`;
* the planner only *selects* a plan, never changes semantics: the
  ``plan="auto"`` run is asserted bit-identical to explicitly running
  the plan :meth:`ExecutionPlan.auto` resolves to;
* catalogued UDFs resolve by name at the query layer —
  ``apply_udf("galage", ...)`` — so the whole configuration surface of
  a query can be two strings.

Run with:  python examples/auto_planned_query.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    ExecutionPlan,
    Query,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.rng import as_generator
from repro.udf.catalog import default_catalog
from repro.udf.synthetic import async_service_udf
from repro.workloads.generators import input_stream, workload_for_udf

#: Simulated round-trip latency of the "remote service" UDF (seconds).
LATENCY = 2e-2

N_TUPLES = 6


def make_run():
    """A fresh (service udf, engine, tuple stream) triple with fixed seeds."""
    udf = async_service_udf("F4", latency=LATENCY)
    engine = UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.12, delta=0.05),
        random_state=7,
        n_samples=120,
    )
    dists = list(
        input_stream(workload_for_udf(udf), N_TUPLES, random_state=as_generator(3))
    )
    return udf, engine, dists


def main() -> None:
    # --- the catalog: declared cost profiles ---------------------------------
    catalog = default_catalog()
    print("default catalog (astro case-study UDFs, pre-profiled):")
    for profile in catalog.profiles():
        print(f"  {profile.describe()}")

    udf, _, _ = make_run()
    print("\nderived profile of the 20 ms service UDF:")
    print(f"  {catalog.profile_for(udf).describe()}")

    # --- what the planner resolves for it ------------------------------------
    auto_plan = ExecutionPlan.auto(udf, relation_size=N_TUPLES)
    print(f"\nExecutionPlan.auto resolves: {auto_plan.describe()}")

    # --- naive default plan vs plan="auto" -----------------------------------
    udf, engine, dists = make_run()
    started = time.perf_counter()
    naive_outputs = engine.compute_with_plan(udf, dists, ExecutionPlan()).outputs
    naive_wall = time.perf_counter() - started

    udf, engine, dists = make_run()
    started = time.perf_counter()
    auto_result = engine.compute_with_plan(udf, dists, plan="auto")
    auto_wall = time.perf_counter() - started

    # The planner selected a plan; the explicit spelling of that same plan
    # must produce the same bits.
    udf, engine, dists = make_run()
    explicit = engine.compute_with_plan(
        udf, dists, ExecutionPlan.auto(udf, len(dists), engine=engine)
    )
    for a, b in zip(auto_result.outputs, explicit.outputs):
        assert np.array_equal(a.distribution.samples, b.distribution.samples)
        assert a.error_bound == b.error_bound

    print("\nnaive default plan (per-tuple, serial)")
    print(f"  wall-clock        : {naive_wall:.2f} s")
    print(f'\nplan="auto" ({auto_result.plan.describe()})')
    print(f"  wall-clock        : {auto_wall:.2f} s")
    print(f"  speedup vs naive  : {naive_wall / auto_wall:.2f}x")
    print("  output            : bit-identical to the explicit plan (asserted)")
    worst = max(output.error_bound for output in auto_result.outputs)
    print(f"  worst claimed bound: {worst:.3f}  (same (eps, delta) guarantee)")
    assert len(naive_outputs) == len(auto_result.outputs)

    # --- name-based query over the catalog -----------------------------------
    galaxy = generate_galaxy_relation(4, random_state=11)
    engine = UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.15, delta=0.05),
        random_state=5,
        n_samples=120,
    )
    result = (
        Query(galaxy)
        .apply_udf("galage", ["redshift"], alias="age", plan="auto")
        .project(["objID", "age"])
        .run(engine)
    )
    print('\nQuery(...).apply_udf("galage", ["redshift"], plan="auto"):')
    for row in result:
        print(
            f"  objID={row['objID']}  age={float(np.mean(row['age'].samples)):.2f} Gyr "
            f"(bound {row.annotations['age_error_bound']:.3f})"
        )


if __name__ == "__main__":
    main()
