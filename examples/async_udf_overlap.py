"""Hiding a slow external UDF's latency with asynchronous refinement.

Scenario: the UDF is a genuinely slow black box — think a remote service or
an expensive simulation, modelled here by a
:class:`~repro.udf.synthetic.RealCostFunction` whose every call *occupies*
10 ms of wall-clock.  The serial refinement loop waits out those calls one
at a time; with ``async_inflight=8`` up to eight of them run concurrently
while the engine keeps doing GP work, so the same query finishes in a
fraction of the time.

The example also demonstrates the determinism half of the contract: at
``async_inflight=1`` the asynchronous executor *is* the serial batched
path, bit for bit — asserted below.

Run with:  python examples/async_udf_overlap.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.accuracy import AccuracyRequirement
from repro.engine import AsyncRefinementExecutor, BatchExecutor, UDFExecutionEngine
from repro.rng import as_generator
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf

#: Real per-call latency of the "external" black box (seconds).
EVAL_TIME = 1e-2

N_TUPLES = 6


def make_run():
    """A fresh (udf, engine, tuple stream) triple with fixed seeds."""
    udf = reference_function("F4", real_eval_time=EVAL_TIME)
    engine = UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.12, delta=0.05),
        random_state=7,
        n_samples=120,
    )
    dists = list(
        input_stream(workload_for_udf(udf), N_TUPLES, random_state=as_generator(3))
    )
    return udf, engine, dists


def main() -> None:
    # --- serial baseline: the batched pipeline, one UDF call at a time -------
    udf, engine, dists = make_run()
    started = time.perf_counter()
    serial_outputs = BatchExecutor(engine, batch_size=N_TUPLES).compute_batch(udf, dists)
    serial_wall = time.perf_counter() - started
    print("serial batched refinement")
    print(f"  wall-clock             : {serial_wall:.2f} s")
    print(f"  UDF evaluations        : {udf.call_count}")

    # --- async_inflight=1: must be the serial path, bit for bit --------------
    udf, engine, dists = make_run()
    executor = AsyncRefinementExecutor(engine, inflight=1, batch_size=N_TUPLES)
    identity_outputs = executor.compute_batch(udf, dists)
    for a, b in zip(serial_outputs, identity_outputs):
        assert np.array_equal(a.distribution.samples, b.distribution.samples)
        assert a.error_bound == b.error_bound
    print("\nasync_inflight=1")
    print("  output                 : bit-identical to the serial run (asserted)")

    # --- async_inflight=8: overlap the black-box calls ------------------------
    udf, engine, dists = make_run()
    executor = AsyncRefinementExecutor(engine, inflight=8, batch_size=N_TUPLES)
    started = time.perf_counter()
    async_outputs = executor.compute_batch(udf, dists)
    async_wall = time.perf_counter() - started
    print("\nasync_inflight=8")
    print(f"  wall-clock             : {async_wall:.2f} s")
    print(f"  UDF evaluations        : {udf.call_count} "
          "(speculative windows may evaluate a few extra points)")
    print(f"  peak in-flight calls   : {udf.max_in_flight}")
    print(f"  speedup vs serial      : {serial_wall / async_wall:.2f}x")

    # Every output still carries its rigorous claimed error bound; the
    # refinement trajectory just absorbed training points in overlapped
    # windows instead of one at a time.  (Tuples that hit the per-tuple
    # point cap report an honest, larger bound — in both modes.)
    worst = max(output.error_bound for output in async_outputs)
    print(f"  worst claimed bound    : {worst:.3f}")


if __name__ == "__main__":
    main()
