"""Setuptools shim: metadata lives in pyproject.toml.

Kept so `pip install -e .` works through the legacy editable route on
environments whose setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
