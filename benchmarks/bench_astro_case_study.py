"""Section 6.4: the astrophysics case-study table and Figure 6.

Covers three artifacts:
* the table of UDF name / dimensionality / evaluation time,
* Fig. 6(a), the non-Gaussian output density of AngDist, and
* Fig. 6(b-d), GP versus MC runtime per UDF as ε varies.
"""

from __future__ import annotations

import numpy as np

from repro.bench import astro_case_study_table, astro_gp_vs_mc, astro_output_density


def test_astro_case_study_table(once):
    table = once(lambda: astro_case_study_table(n_probes=30, random_state=0))
    print()
    print(table.to_text())

    by_name = {row["function"]: row for row in table.rows}
    # Dimensions match the paper's table.
    assert by_name["GalAge"]["dimension"] == 1
    assert by_name["AngDist"]["dimension"] == 2
    assert by_name["ComoveVol"]["dimension"] == 2
    # Evaluation-time ordering: AngDist (trigonometry) is by far the fastest;
    # the integrating UDFs are orders of magnitude slower.
    assert by_name["AngDist"]["eval_time_ms"] < by_name["GalAge"]["eval_time_ms"]
    assert by_name["AngDist"]["eval_time_ms"] < by_name["ComoveVol"]["eval_time_ms"]


def test_astro_output_density(once):
    table = once(lambda: astro_output_density(n_samples=3000, bins=30, random_state=1))
    print()
    print(table.to_text())
    densities = np.array(table.column("pdf"))
    centers = np.array(table.column("y"))
    # The density is a proper non-negative histogram over a positive support
    # (angular separations cannot be negative) and is clearly skewed.
    assert np.all(densities >= 0)
    assert centers.min() >= 0
    peak = centers[np.argmax(densities)]
    mean = np.average(centers, weights=densities)
    assert mean != peak  # not symmetric around its mode


def test_astro_gp_vs_mc(once):
    table = once(
        lambda: astro_gp_vs_mc(
            epsilons=(0.1, 0.2),
            udf_names=("GalAge", "ComoveVol"),
            n_tuples=4,
            random_state=2,
        )
    )
    print()
    print(table.to_text())

    # Shape check (Fig. 6c, 6d): for the expensive integrating UDFs the GP
    # approach wins at the tighter accuracy requirement (where MC needs many
    # samples); at loose requirements on the faster GalAge the two approaches
    # are comparable, exactly as in the paper's figure.
    for udf_name in ("GalAge", "ComoveVol"):
        rows = table.filtered(function=udf_name, epsilon=0.1)
        gp_time = rows.filtered(approach="gp").column("mean_time_ms")[0]
        mc_time = rows.filtered(approach="mc").column("mean_time_ms")[0]
        assert gp_time < mc_time
    comove_loose = table.filtered(function="ComoveVol", epsilon=0.2)
    assert (
        comove_loose.filtered(approach="gp").column("mean_time_ms")[0]
        < comove_loose.filtered(approach="mc").column("mean_time_ms")[0]
    )

    # The GP model for these smooth UDFs needs only a modest number of
    # training points (the paper reports ~10 for GalAge, <40 for ComoveVol).
    for udf_name in ("GalAge", "ComoveVol"):
        final_points = table.filtered(function=udf_name, approach="gp").column("n_training")
        assert max(final_points) <= 120
