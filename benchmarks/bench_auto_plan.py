"""Profile-driven auto-planning versus the naive default plan."""

from __future__ import annotations

from repro.bench import auto_plan, auto_plan_report


def test_auto_plan(once):
    table = once(
        lambda: auto_plan(
            n_tuples=4,
            service_latency=5e-3,
            n_samples=120,
        )
    )
    print()
    print(table.to_text())

    report = auto_plan_report(table)
    # Shape check 1: one row per mode, naive first (the speedup reference).
    assert [r["mode"] for r in table.rows] == ["naive", "auto", "explicit"]

    # Shape check 2 (correctness, not perf): plan="auto" IS the explicitly
    # spelled plan it resolves to, bit for bit.
    assert report["identical_to_explicit"] is True

    # Shape check 3: overlapping the declared service latency never
    # pathologically regresses.  (The quantitative >= 2x target on the
    # 20 ms/request service is tracked by the CI smoke artifact.)
    assert report["speedup"] > 0.8
