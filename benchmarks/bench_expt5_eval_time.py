"""Figure 5(i): GP versus MC runtime as the UDF evaluation time grows."""

from __future__ import annotations

import numpy as np

from repro.bench import expt5_eval_time


def test_expt5_eval_time(once):
    table = once(
        lambda: expt5_eval_time(
            eval_times=(1e-5, 1e-3, 1e-1),
            function_names=("F1", "F4"),
            n_tuples=4,
            epsilon=0.12,
            random_state=7,
        )
    )
    print()
    print(table.to_text())

    mc = table.filtered(approach="mc")
    mc_times = np.array(mc.column("mean_time_ms"))
    # Shape check 1: MC runtime grows roughly linearly with evaluation time.
    assert mc_times[-1] > 100 * mc_times[0] * 0.1
    assert np.all(np.diff(mc_times) > 0)

    # Shape check 2: GP runtime is nearly insensitive to evaluation time —
    # the slowest setting is within a modest factor of the fastest.
    for name in ("F1", "F4"):
        gp_times = np.array(table.filtered(approach="gp", function=name).column("mean_time_ms"))
        assert gp_times.max() < gp_times.min() * 50

    # Shape check 3 (the headline crossover): for slow UDFs (0.1 s per call)
    # the GP approach beats MC by a wide margin.
    slow_mc = mc.filtered(eval_time_ms=100.0).column("mean_time_ms")[0]
    for name in ("F1", "F4"):
        slow_gp = table.filtered(approach="gp", function=name, eval_time_ms=100.0).column(
            "mean_time_ms"
        )[0]
        assert slow_gp < slow_mc / 5
