"""Shared configuration for the benchmark suite.

Every benchmark wraps one experiment function from :mod:`repro.bench` with
scaled-down parameters (so ``pytest benchmarks/ --benchmark-only`` completes
in minutes) and asserts the qualitative *shape* of the paper's result rather
than absolute numbers.  Full-scale runs are obtained by calling the same
experiment functions with their default parameters; see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The experiments are full end-to-end algorithm executions (seconds each),
    so repeating them for statistical timing the way micro-benchmarks do
    would make the suite needlessly slow.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(func):
        return run_once(benchmark, func)

    return runner
