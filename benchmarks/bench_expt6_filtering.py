"""Figure 5(j, k): online filtering with selection predicates."""

from __future__ import annotations


from repro.bench import expt6_filtering


def test_expt6_filtering(once):
    table = once(
        lambda: expt6_filtering(
            target_filter_rates=(0.2, 0.8),
            n_tuples=12,
            epsilon=0.12,
            eval_time=1e-3,
            n_truth_samples=4000,
            random_state=8,
        )
    )
    print()
    print(table.to_text())

    # Shape check 1 (Fig. 5j): at a high filtering rate, online filtering
    # reduces runtime for both MC and GP.
    high = table.filtered(target_filter_rate=0.8)
    mc_time = high.filtered(approach="mc").column("mean_time_ms")[0]
    mc_of_time = high.filtered(approach="mc+of").column("mean_time_ms")[0]
    gp_time = high.filtered(approach="gp").column("mean_time_ms")[0]
    gp_of_time = high.filtered(approach="gp+of").column("mean_time_ms")[0]
    assert mc_of_time <= mc_time
    assert gp_of_time <= gp_time * 1.5  # GP is already cheap; OF must not blow it up

    # Shape check 2 (Fig. 5k): where enough tuples genuinely fall below the
    # threshold (the high-filter-rate setting), false positives stay low, and
    # false negatives are (near) zero everywhere.
    for approach in ("mc+of", "gp+of"):
        rows = table.filtered(approach=approach)
        for row in rows.rows:
            if row["actual_filter_rate"] >= 0.5:
                assert row["false_positive_rate"] <= 0.35
            assert row["false_negative_rate"] <= 0.2
