"""Async-overlapped versus serial batched refinement (real-cost workload)."""

from __future__ import annotations

from repro.bench import async_report, udf_overlap


def test_udf_overlap(once):
    table = once(
        lambda: udf_overlap(
            inflight_list=(1, 4),
            n_tuples=4,
            batch_size=4,
            real_eval_time=5e-3,
            n_samples=120,
        )
    )
    print()
    print(table.to_text())

    report = async_report(table)
    # Shape check 1: one serial row plus one async row per in-flight bound.
    assert [r["mode"] for r in table.rows] == ["serial", "async", "async"]
    assert set(report["speedup"]) == {"1", "4"}

    # Shape check 2 (correctness, not perf): the inflight=1 run IS the
    # serial batched path, bit for bit.
    assert report["identical_at_1"] is True

    # Shape check 3: overlapping a genuinely slow black box never
    # pathologically regresses.  (The quantitative >= 2x target at
    # inflight=8 is tracked by the CI smoke artifact at full scale.)
    assert report["speedup"]["4"] > 0.8
