"""Transport-overlapped versus serial batched refinement (async service UDF)."""

from __future__ import annotations

from repro.bench import transport_report, udf_transport


def test_udf_transport(once):
    table = once(
        lambda: udf_transport(
            transports=("threads", "asyncio"),
            inflight_list=(1, 4),
            n_tuples=4,
            batch_size=4,
            service_latency=5e-3,
            n_samples=120,
        )
    )
    print()
    print(table.to_text())

    report = transport_report(table)
    # Shape check 1: one serial row plus one row per (transport, inflight).
    assert [r["transport"] for r in table.rows] == [
        "serial", "threads", "threads", "asyncio", "asyncio",
    ]
    assert set(report["speedup"]) == {"threads", "asyncio"}
    assert set(report["speedup"]["asyncio"]) == {"1", "4"}

    # Shape check 2 (correctness, not perf): every transport's inflight=1
    # run IS the serial batched path, bit for bit.
    assert report["identical_at_1"] == {"threads": True, "asyncio": True}

    # Shape check 3: overlapping awaited service latency never
    # pathologically regresses.  (The quantitative >= 2x target at
    # inflight=8 on the asyncio transport is tracked by the CI smoke
    # artifact at full scale.)
    assert report["speedup"]["asyncio"]["4"] > 0.8
