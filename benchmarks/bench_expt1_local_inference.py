"""Figure 5(c, d): local versus global inference — accuracy and runtime."""

from __future__ import annotations


from repro.bench import expt1_local_inference


def test_expt1_local_inference(once):
    table = once(
        lambda: expt1_local_inference(
            gamma_fractions=(0.005, 0.05, 0.2),
            n_training=300,
            n_tuples=4,
            n_samples=1500,
            n_truth_samples=6000,
            random_state=3,
        )
    )
    print()
    print(table.to_text())

    global_rows = table.filtered(method="global")
    local_rows = table.filtered(method="local")
    global_error = global_rows.column("actual_error")[0]
    global_time = global_rows.column("time_ms")[0]

    # Shape check 1 (Fig. 5c): for small-to-moderate gamma, local inference is
    # about as accurate as global inference.
    small_gamma_error = local_rows.rows[0]["actual_error"]
    assert small_gamma_error <= global_error + 0.05

    # Shape check 2 (Fig. 5d): local inference uses fewer training points than
    # global inference.  NOTE (see EXPERIMENTS.md): the paper's 2-4x wall-clock
    # speedup does not reproduce at this scale because global inference here is
    # a single cached, vectorised matrix product; we therefore only require
    # that local inference stays within a small factor of global.
    assert min(local_rows.column("mean_points_used")) < global_rows.column("mean_points_used")[0]
    assert min(local_rows.column("time_ms")) <= global_time * 6.0

    # Shape check 3: larger gamma selects fewer (or equal) points.
    points_used = local_rows.column("mean_points_used")
    assert points_used[-1] <= points_used[0] + 1e-9
