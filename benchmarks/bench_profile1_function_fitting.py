"""Figure 5(a): GP function-fitting error versus the number of training points."""

from __future__ import annotations

import numpy as np

from repro.bench import profile1_function_fitting


def test_profile1_function_fitting(once):
    table = once(
        lambda: profile1_function_fitting(
            n_training_values=(30, 60, 120),
            function_names=("F1", "F4"),
            n_test_points=250,
            random_state=0,
        )
    )
    print()
    print(table.to_text())

    # Shape check 1: for every function the error shrinks as n grows.
    for name in ("F1", "F4"):
        errors = table.filtered(function=name).column("relative_error")
        assert errors[-1] < errors[0]

    # Shape check 2: the bumpy F4 needs more points — at every n its error
    # exceeds the smooth F1's error.
    f1 = np.array(table.filtered(function="F1").column("relative_error"))
    f4 = np.array(table.filtered(function="F4").column("relative_error"))
    assert np.all(f4 >= f1 * 0.5)
    assert f4.mean() > f1.mean()
