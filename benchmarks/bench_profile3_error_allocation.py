"""Section 6.2 Profile 3: splitting the error budget between MC and GP."""

from __future__ import annotations

import numpy as np

from repro.bench import profile3_error_allocation


def test_profile3_error_allocation(once):
    table = once(
        lambda: profile3_error_allocation(
            mc_fractions=(0.5, 0.7, 0.9),
            n_tuples=4,
            epsilon=0.15,
            max_points_per_tuple=25,
            n_truth_samples=6000,
            random_state=2,
        )
    )
    print()
    print(table.to_text())

    # Shape check 1: a larger MC share tolerates more sampling error, so it
    # needs fewer samples per tuple (the work shifts towards GP accuracy).
    samples = table.column("mc_samples_per_tuple")
    assert samples[0] > samples[-1]

    # Shape check 2 (why the paper picks ~0.7): runtime falls as the MC share
    # grows, but an extreme MC share squeezes the GP budget so hard that the
    # model stops converging and accuracy collapses.  The middle allocation
    # must therefore be at least as accurate as the most extreme one.
    times = table.column("mean_time_ms")
    assert times[0] > times[-1]
    errors = np.array(table.column("mean_actual_error"))
    assert errors[1] <= errors[-1] + 1e-9
