"""Figure 5(e): training points added over time by each tuning heuristic."""

from __future__ import annotations

from repro.bench import expt2_online_tuning


def test_expt2_online_tuning(once):
    table = once(
        lambda: expt2_online_tuning(
            strategies=("random", "largest_variance"),
            n_tuples=15,
            initial_points=20,
            n_samples=300,
            max_points_per_tuple=8,
            epsilon=0.12,
            random_state=4,
        )
    )
    print()
    print(table.to_text())

    def final_count(strategy: str) -> int:
        rows = table.filtered(strategy=strategy).rows
        return rows[-1]["cumulative_points_added"]

    # Shape check (Fig. 5e): the largest-variance heuristic needs no more
    # points than random selection to satisfy the same error bound.
    assert final_count("largest_variance") <= final_count("random")

    # Cumulative counts are non-decreasing by construction.
    for strategy in ("random", "largest_variance"):
        counts = table.filtered(strategy=strategy).column("cumulative_points_added")
        assert all(a <= b for a, b in zip(counts, counts[1:]))


def test_expt2_optimal_greedy_tracks_largest_variance(once):
    table = once(
        lambda: expt2_online_tuning(
            strategies=("largest_variance", "optimal_greedy"),
            n_tuples=6,
            initial_points=20,
            n_samples=200,
            max_points_per_tuple=5,
            epsilon=0.12,
            random_state=5,
        )
    )
    print()
    print(table.to_text())
    largest = table.filtered(strategy="largest_variance").rows[-1]["cumulative_points_added"]
    greedy = table.filtered(strategy="optimal_greedy").rows[-1]["cumulative_points_added"]
    # The cheap heuristic should stay within a small factor of optimal greedy.
    assert largest <= max(2 * greedy, greedy + 10)
