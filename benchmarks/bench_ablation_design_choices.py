"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the impact of swappable pieces of
the implementation: the covariance function, the simultaneous-band
calibration method, and the Algorithm 3 sweep versus the naive quadratic
error-bound computation.
"""

from __future__ import annotations

import numpy as np

from repro.core.confidence_bands import band_z_value
from repro.core.error_bounds import (
    build_envelope_outputs,
    gp_discrepancy_bound,
    gp_discrepancy_bound_naive,
)
from repro.gp.kernels import Matern32, Matern52, SquaredExponential
from repro.gp.regression import GaussianProcess
from repro.gp.training import fit_hyperparameters
from repro.index.bounding_box import BoundingBox
from repro.udf.synthetic import reference_function


def _fit_errors(kernel_factory, n_training=120, n_test=300, seed=0):
    udf = reference_function("F4").with_simulated_eval_time(0.0)
    rng = np.random.default_rng(seed)
    low, high = udf.domain
    X = rng.uniform(low, high, size=(n_training, 2))
    y = udf.evaluate_batch(X)
    gp = GaussianProcess(kernel=kernel_factory())
    gp.fit(X, y)
    fit_hyperparameters(gp)
    X_test = rng.uniform(low, high, size=(n_test, 2))
    truth = udf.evaluate_batch(X_test)
    predictions = gp.predict_mean(X_test)
    return float(np.mean(np.abs(predictions - truth) / np.maximum(np.abs(truth), 1e-9)))


def test_ablation_kernel_choice(once):
    """All three kernels fit the bumpy F4 reasonably; report their errors."""

    def run():
        return {
            "squared_exponential": _fit_errors(SquaredExponential),
            "matern52": _fit_errors(Matern52),
            "matern32": _fit_errors(Matern32),
        }

    errors = once(run)
    print()
    for name, value in errors.items():
        print(f"  kernel={name:<22} relative_error={value:.4f}")
    assert all(value < 0.5 for value in errors.values())


def test_ablation_band_method(once):
    """Euler-characteristic bands are tighter than Bonferroni, wider than point-wise."""

    def run():
        kernel = SquaredExponential(signal_std=1.0, lengthscale=0.8)
        box = BoundingBox(np.zeros(2), np.full(2, 3.0))
        return {
            "pointwise": band_z_value(kernel, box, alpha=0.05, method="pointwise").z_value,
            "euler": band_z_value(kernel, box, alpha=0.05, method="euler").z_value,
            "bonferroni": band_z_value(
                kernel, box, alpha=0.05, method="bonferroni", n_points=2000
            ).z_value,
        }

    z_values = once(run)
    print()
    for name, value in z_values.items():
        print(f"  band={name:<12} z={value:.3f}")
    assert z_values["pointwise"] <= z_values["euler"] <= z_values["bonferroni"] + 0.5


def test_ablation_bound_algorithm_efficient_vs_naive(benchmark):
    """Algorithm 3 (O(m log m)) versus the naive O(m^2) enumeration."""
    rng = np.random.default_rng(3)
    m = 400
    means = rng.normal(size=m)
    stds = np.abs(rng.normal(scale=0.3, size=m))
    envelope = build_envelope_outputs(means, stds, 2.0)
    lam = 0.1

    fast = benchmark(lambda: gp_discrepancy_bound(envelope, lam))
    slow = gp_discrepancy_bound_naive(envelope, lam)
    assert abs(fast - slow) < 1e-9
