"""Figure 5(b): λ-discrepancy error bound versus the actual error."""

from __future__ import annotations

import numpy as np

from repro.bench import profile2_error_bound


def test_profile2_error_bound(once):
    table = once(
        lambda: profile2_error_bound(
            lambda_fractions=(0.005, 0.02, 0.05, 0.1),
            n_training=120,
            n_tuples=5,
            n_samples=800,
            n_truth_samples=12000,
            random_state=1,
        )
    )
    print()
    print(table.to_text())

    bounds = np.array(table.column("error_bound"))
    actuals = np.array(table.column("actual_error"))

    # Shape check 1: the bound is a genuine upper bound on the realised error.
    assert np.all(bounds >= actuals - 0.02)

    # Shape check 2: both the bound and the error grow as lambda shrinks
    # (more intervals are considered in the supremum).
    assert bounds[0] >= bounds[-1] - 1e-9
    assert actuals[0] >= actuals[-1] - 0.02
