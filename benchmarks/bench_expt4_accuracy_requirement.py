"""Figure 5(h): OLGAPRO runtime versus the accuracy requirement ε."""

from __future__ import annotations

import numpy as np

from repro.bench import expt4_accuracy_requirement


def test_expt4_accuracy_requirement(once):
    table = once(
        lambda: expt4_accuracy_requirement(
            epsilons=(0.1, 0.2),
            function_names=("F1", "F4"),
            n_tuples=5,
            eval_time=1e-3,
            random_state=6,
        )
    )
    print()
    print(table.to_text())

    # Shape check 1: a tighter epsilon costs more time for every function.
    for name in ("F1", "F4"):
        rows = table.filtered(function=name)
        tight = rows.filtered(epsilon=0.1).column("mean_time_ms")[0]
        loose = rows.filtered(epsilon=0.2).column("mean_time_ms")[0]
        assert tight >= loose * 0.8  # allow noise, but the trend must not invert badly

    # Shape check 2: the bumpy F4 is more expensive than the flat F1 and ends
    # with more training points.
    f1_points = np.mean(table.filtered(function="F1").column("n_training_final"))
    f4_points = np.mean(table.filtered(function="F4").column("n_training_final"))
    assert f4_points >= f1_points
    f1_time = np.mean(table.filtered(function="F1").column("mean_time_ms"))
    f4_time = np.mean(table.filtered(function="F4").column("mean_time_ms"))
    assert f4_time >= f1_time * 0.8
