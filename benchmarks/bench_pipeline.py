"""Cross-tuple pipelined versus within-tuple async refinement (real cost)."""

from __future__ import annotations

from repro.bench import pipeline_report, udf_pipeline


def test_udf_pipeline(once):
    table = once(
        lambda: udf_pipeline(
            lookahead_list=(1, 4),
            inflight=2,
            n_tuples=8,
            batch_size=8,
            real_eval_time=1e-2,
            n_samples=120,
        )
    )
    print()
    print(table.to_text())

    report = pipeline_report(table)
    # Shape check 1: serial + async baselines plus one row per lookahead.
    assert [r["mode"] for r in table.rows] == ["serial", "async", "pipeline", "pipeline"]
    assert set(report["speedup"]) == {"1", "4"}

    # Shape check 2 (correctness, not perf): lookahead=1 IS the serial
    # batched path, and deeper lookaheads commit the async trajectory —
    # both bit for bit.
    assert report["identical_at_1"] is True
    assert report["identical_above_1"] is True

    # Shape check 3: pipelining a genuinely slow black box never
    # pathologically regresses.  (The quantitative >= 1.5x target at
    # lookahead=4 is tracked by the CI smoke artifact at full scale.)
    assert report["speedup"]["4"] > 0.8
