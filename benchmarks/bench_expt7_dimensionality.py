"""Figure 5(l): GP versus MC runtime as the UDF dimensionality grows."""

from __future__ import annotations

import numpy as np

from repro.bench import expt7_dimensionality


def test_expt7_dimensionality(once):
    table = once(
        lambda: expt7_dimensionality(
            dimensions=(1, 2, 4),
            mc_eval_times=(1e-3, 1.0),
            gp_eval_time=1.0,
            n_tuples=3,
            epsilon=0.12,
            random_state=9,
        )
    )
    print()
    print(table.to_text())

    gp = table.filtered(approach="gp")
    gp_times = np.array(gp.column("mean_time_ms"))

    # Shape check 1: GP cost grows with dimensionality (more training points
    # are needed to cover a larger region).
    assert gp_times[-1] >= gp_times[0] * 0.8

    # Shape check 2: for a 1-second UDF, the GP approach beats MC at every
    # dimensionality tested.
    for dimension in (1, 2, 4):
        gp_time = gp.filtered(dimension=dimension).column("mean_time_ms")[0]
        mc_time = table.filtered(approach="mc", dimension=dimension, eval_time_ms=1000.0).column(
            "mean_time_ms"
        )[0]
        assert gp_time < mc_time

    # Shape check 3: for a fast (1 ms) UDF at higher dimensionality, MC is the
    # competitive choice (the motivation for the hybrid rule).
    mc_fast = table.filtered(approach="mc", dimension=4, eval_time_ms=1.0).column("mean_time_ms")[0]
    gp_d4 = gp.filtered(dimension=4).column("mean_time_ms")[0]
    assert mc_fast < gp_d4 * 10
