"""Batched execution pipeline versus per-tuple execution (CI smoke workload)."""

from __future__ import annotations

from repro.bench import batch_pipeline_speedup, smoke_report


def test_batch_pipeline_speedup(once):
    table = once(
        lambda: batch_pipeline_speedup(
            n_tuples=48,
            warmup_tuples=24,
            batch_size=32,
            trials=1,
            random_state=11,
        )
    )
    print()
    print(table.to_text())

    report = smoke_report(table)
    # Shape check 1: both strategies produced a per-tuple and a batched row.
    assert set(report["speedup"]) == {"gp", "mc"}

    # Shape check 2: the batched pipeline never pathologically regresses.
    # (The quantitative >= 2x gp target is tracked by the CI smoke artifact
    # at full scale; this scaled-down wrapper only guards the trend, with
    # slack for noisy shared runners.)
    assert report["speedup"]["gp"] > 1.0
    assert report["speedup"]["mc"] > 0.5

    # Shape check 3: the batched rows carry the per-phase attribution.
    batched = table.filtered(mode="batched", strategy="gp").rows[0]
    assert batched["sampling_ms"] > 0.0
    assert batched["inference_ms"] > 0.0
