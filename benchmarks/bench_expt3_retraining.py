"""Figure 5(f, g): retraining strategies — accuracy and runtime."""

from __future__ import annotations

import math

from repro.bench import expt3_retraining


def test_expt3_retraining(once):
    table = once(
        lambda: expt3_retraining(
            thresholds=(0.05, 1.0),
            n_tuples=8,
            n_samples=400,
            epsilon=0.12,
            n_truth_samples=5000,
            random_state=5,
        )
    )
    print()
    print(table.to_text())

    def row_for(policy, threshold=None):
        for row in table.rows:
            if row["policy"] == policy and (
                threshold is None or math.isclose(row["threshold"], threshold)
            ):
                return row
        raise AssertionError(f"missing row for {policy} {threshold}")

    eager = row_for("eager")
    never = row_for("never")
    moderate = row_for("threshold", 0.05)

    # Shape check 1 (Fig. 5g): eager retraining retrains at least as often as
    # the threshold heuristic, which retrains at least as often as never.
    assert eager["n_retrains"] >= moderate["n_retrains"] >= never["n_retrains"]

    # Shape check 2 (Fig. 5f): the moderate threshold's accuracy is close to
    # eager retraining (within the accuracy requirement's slack).
    assert moderate["mean_actual_error"] <= eager["mean_actual_error"] + 0.1

    # Shape check 3: never retraining performs no retrains at all.
    assert never["n_retrains"] == 0
