"""Closed-loop serving load against the always-on QueryService."""

from __future__ import annotations

from repro.bench import serving_load, serving_report


def test_serving_load(once):
    table = once(
        lambda: serving_load(
            clients_list=(1, 4),
            queries_per_client=2,
            n_tuples=2,
            batch_size=2,
            service_latency=1e-2,
            n_samples=120,
            worker_budget=8,
        )
    )
    print()
    print(table.to_text())

    report = serving_report(table)
    # Shape check 1: one serial-reference row plus one row per client count.
    assert [r["clients"] for r in table.rows] == [0, 1, 4]
    assert set(report["throughput"]) == {"1", "4"}
    assert report["p99_at_4"] is not None and report["p99_at_4"] > 0.0

    # Shape check 2 (correctness, not perf): the served query is
    # bit-identical to the same query run directly, same seed, same plan.
    assert report["identical_to_serial"] is True

    # Shape check 3: concurrent clients overlapping awaited service
    # latency never pathologically regress throughput.  (The quantitative
    # >= 2x target at 4 clients is gated by the CI smoke artifact.)
    assert report["scaling_at_4"] > 0.8
