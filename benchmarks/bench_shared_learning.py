"""Live shared model versus per-shard learning (UDF-charge workload)."""

from __future__ import annotations

from repro.bench import shared_learning, shared_learning_report


def test_shared_learning(once):
    table = once(
        lambda: shared_learning(
            workers=2,
            n_tuples=8,
            batch_size=4,
            real_eval_time=1e-3,
            n_samples=150,
        )
    )
    print()
    print(table.to_text())

    report = shared_learning_report(table)
    # Shape check 1: serial baseline, workers=1 identity row, then the
    # discard and shared sharded rows.
    assert [r["mode"] for r in table.rows] == [
        "serial", "shared-serial", "sharded", "sharded"
    ]

    # Shape check 2: the workers=1 shared run is the serial trajectory.
    assert report["identical_at_1"] is True

    # Shape check 3: the shared fleet never pays pathologically more than
    # the serial run.  (The quantitative <=1.2 ceiling at workers=4 is
    # gated by the CI smoke artifact at full scale.)
    assert report["udf_calls_ratio_workers4"] < 1.5
