"""Process-pool sharded execution versus serial batched (scaling workload)."""

from __future__ import annotations

from repro.bench import parallel_report, parallel_scaling


def test_parallel_scaling(once):
    table = once(
        lambda: parallel_scaling(
            strategies=("gp",),
            workers_list=(1, 2),
            n_tuples=8,
            batch_size=4,
            real_eval_time=1e-3,
            n_samples=150,
        )
    )
    print()
    print(table.to_text())

    report = parallel_report(table)
    # Shape check 1: one serial row plus one parallel row per worker count.
    gp_rows = table.filtered(strategy="gp")
    assert [r["mode"] for r in gp_rows.rows] == ["serial", "parallel", "parallel"]
    assert set(report["speedup"]["gp"]) == {"1", "2"}

    # Shape check 2: workers=1 runs the serial fast path, so its wall-clock
    # tracks the baseline closely (generous slack for shared runners).
    assert report["speedup"]["gp"]["1"] > 0.5

    # Shape check 3: sharding across two workers never pathologically
    # regresses on the UDF-bound workload.  (The quantitative >= 2x target
    # at workers=4 is tracked by the CI smoke artifact at full scale.)
    assert report["speedup"]["gp"]["2"] > 0.8
